#include "src/util/table.h"

#include <cstdio>

#include "src/util/check.h"

namespace xfair {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  XFAIR_CHECK(!headers_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  XFAIR_CHECK_MSG(cells.size() == headers_.size(),
                  "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(headers_);
  out += "|";
  for (size_t c = 0; c < widths.size(); ++c)
    out += std::string(widths[c] + 2, '-') + "|";
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace xfair
