// Plain-text table rendering.
//
// The bench harness regenerates the paper's Table I and taxonomy figures as
// aligned ASCII tables; this is the shared renderer.

#ifndef XFAIR_UTIL_TABLE_H_
#define XFAIR_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace xfair {

/// Column-aligned ASCII table with a header row and separator.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; it must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  size_t row_count() const { return rows_.size(); }

  /// Renders with single-space-padded `|` separators, e.g.
  ///   | name  | value |
  ///   |-------|-------|
  ///   | alpha | 1.0   |
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places after the point.
std::string FormatDouble(double v, int digits = 3);

}  // namespace xfair

#endif  // XFAIR_UTIL_TABLE_H_
