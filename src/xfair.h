// Umbrella header: pulls in the whole public xfair API. Prefer the
// per-module headers in translation units that care about compile time;
// this exists for examples, notebooks-style experimentation, and
// downstream quick starts.

#ifndef XFAIR_XFAIR_H_
#define XFAIR_XFAIR_H_

// Utilities.
#include "src/util/check.h"
#include "src/util/matrix.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/table.h"

// Data.
#include "src/data/csv.h"
#include "src/data/dataset.h"
#include "src/data/generators.h"
#include "src/data/scaler.h"
#include "src/data/schema.h"

// Models.
#include "src/model/calibration.h"
#include "src/model/decision_tree.h"
#include "src/model/gbm.h"
#include "src/model/knn.h"
#include "src/model/logistic_regression.h"
#include "src/model/metrics.h"
#include "src/model/model.h"
#include "src/model/random_forest.h"
#include "src/model/softmax_regression.h"

// Causal substrate.
#include "src/causal/dag.h"
#include "src/causal/scm.h"
#include "src/causal/worlds.h"

// Graph substrate.
#include "src/graph/graph.h"
#include "src/graph/sbm.h"
#include "src/graph/sgc.h"

// Recommendation substrate.
#include "src/rec/interactions.h"
#include "src/rec/knowledge_graph.h"
#include "src/rec/mf.h"
#include "src/rec/recwalk.h"

// Fairness metrics.
#include "src/fairness/drift.h"
#include "src/fairness/group_metrics.h"
#include "src/fairness/individual_metrics.h"
#include "src/fairness/ranking_metrics.h"
#include "src/fairness/tradeoff.h"

// XAI substrate.
#include "src/explain/counterfactual.h"
#include "src/explain/diverse.h"
#include "src/explain/importance.h"
#include "src/explain/influence.h"
#include "src/explain/prototypes.h"
#include "src/explain/rules.h"
#include "src/explain/shap.h"
#include "src/explain/surrogate.h"

// Explaining unfairness (the paper's core).
#include "src/unfair/actions.h"
#include "src/unfair/ares.h"
#include "src/unfair/burden.h"
#include "src/unfair/causal_path.h"
#include "src/unfair/cet.h"
#include "src/unfair/contrastive.h"
#include "src/unfair/explanation_quality.h"
#include "src/unfair/facts.h"
#include "src/unfair/fairness_shap.h"
#include "src/unfair/globece.h"
#include "src/unfair/gopher.h"
#include "src/unfair/precof.h"
#include "src/unfair/recourse.h"

// Mitigation.
#include "src/mitigate/counterfactual_fair.h"
#include "src/mitigate/inprocess.h"
#include "src/mitigate/postprocess.h"
#include "src/mitigate/preprocess.h"

// Beyond classification.
#include "src/beyond/cef.h"
#include "src/beyond/cfairer.h"
#include "src/beyond/dexer.h"
#include "src/beyond/fair_topk.h"
#include "src/beyond/gnnuers.h"
#include "src/beyond/kg_rerank.h"
#include "src/beyond/node_influence.h"
#include "src/beyond/rec_edge_explain.h"
#include "src/beyond/structural_bias.h"

// Taxonomy + registry.
#include "src/core/registry.h"
#include "src/core/taxonomy.h"

#endif  // XFAIR_XFAIR_H_
