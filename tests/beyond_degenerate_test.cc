// Degenerate-input behavior for the beyond-classification explainers:
// empty interaction worlds, single-group catalogs, saturated rankings.

#include <gtest/gtest.h>

#include <cmath>

#include "src/beyond/cef.h"
#include "src/beyond/cfairer.h"
#include "src/beyond/dexer.h"
#include "src/beyond/gnnuers.h"
#include "src/beyond/kg_rerank.h"
#include "src/beyond/rec_edge_explain.h"
#include "src/data/generators.h"
#include "src/rec/knowledge_graph.h"

namespace xfair {
namespace {

TEST(BeyondDegenerate, SingleGroupCatalogHasNoExposureGap) {
  RecGenConfig cfg;
  cfg.protected_item_fraction = 0.0;  // No protected items at all.
  RecWorld world = GenerateRecWorld(cfg, 901);
  RecWalkScorer scorer(&world.interactions);
  EXPECT_DOUBLE_EQ(RecExposureShare(scorer, world.interactions,
                                    world.item_groups, 10),
                   0.0);
  // Edge-removal explanations still run and report ~zero effects.
  RecEdgeExplainOptions opts;
  opts.max_edges = 5;
  auto attributions = ExplainExposureByEdgeRemoval(
      world.interactions, world.item_groups, opts);
  for (const auto& a : attributions) EXPECT_NEAR(a.effect, 0.0, 1e-12);
}

TEST(BeyondDegenerate, GnnuersWithUniformUsersFindsNothingToFix) {
  RecGenConfig cfg;
  cfg.protected_user_fraction = 0.0;  // Single user group.
  RecWorld world = GenerateRecWorld(cfg, 902);
  GnnuersOptions opts;
  opts.max_deletions = 3;
  auto report = ExplainUserUnfairnessByPerturbation(
      world.interactions, world.user_groups, opts);
  // Gap against an empty group reads as one-sided; the loop must not
  // delete the entire graph chasing it.
  EXPECT_LE(report.deletions.size(), opts.max_deletions);
}

TEST(BeyondDegenerate, CefOnRankOneModelIsBounded) {
  RecWorld world = GenerateRecWorld({}, 903);
  MatrixFactorization mf;
  MfOptions opts;
  opts.rank = 1;
  ASSERT_TRUE(mf.Fit(world.interactions, opts).ok());
  auto report = ExplainRecFairnessByFactors(mf, world.interactions,
                                            world.item_groups, {});
  ASSERT_EQ(report.ranked_factors.size(), 1u);
  EXPECT_GE(report.ranked_factors[0].explainability, 0.0);
}

TEST(BeyondDegenerate, CfairerWithNoAttributesLeftIsHonest) {
  RecWorld world = GenerateRecWorld({}, 904);
  // One useless attribute: constant across items.
  Matrix attrs(world.interactions.num_items(), 1, 1.0);
  AttributeRecommender model(world.interactions, std::move(attrs));
  CfairerOptions opts;
  opts.target_gap = 0.0;  // Unreachable in general.
  auto report = ExplainFairnessByAttributes(model, world.item_groups, opts);
  // Cannot improve with a constant attribute; must not claim success
  // unless the gap is literally zero already.
  if (!report.target_reached) {
    EXPECT_GE(report.final_exposure_gap, 0.0);
  }
  EXPECT_LE(report.attribute_set.size(), 1u);
}

TEST(BeyondDegenerate, DexerOnUniformScoresReportsNoGap) {
  Dataset data = CreditGen().Generate(200, 905);
  TupleScorer constant = [](const Vector&) { return 1.0; };
  DexerOptions opts;
  opts.top_k = 50;
  auto report = ExplainRankingRepresentation(data, constant, opts);
  // With constant scores the top-k is order-of-index; the gap reflects
  // sampling, not the scorer — attributions should be ~0.
  for (double a : report.attributions) EXPECT_NEAR(a, 0.0, 1e-9);
}

TEST(BeyondDegenerate, FairRerankWithEmptyCandidates) {
  auto result = FairRerank({}, {});
  EXPECT_TRUE(result.ranking.empty());
  EXPECT_FALSE(result.constraint_met);  // Nothing ranked, nothing met.
}

TEST(BeyondDegenerate, KgWithNoAttributesStillYieldsCfPaths) {
  RecGenConfig cfg;
  cfg.num_users = 10;
  cfg.num_items = 8;
  RecWorld world = GenerateRecWorld(cfg, 906);
  KgWorld kgw = BuildKgFromRecWorld(world, 1, 907);
  auto paths = kgw.kg.FindItemPaths(kgw.user_entities[0], 3);
  // Collaborative (user-mediated) and attribute paths both possible; at
  // minimum the call returns without error and paths end at items.
  for (const auto& p : paths) {
    EXPECT_EQ(kgw.kg.type(p.entities.back()), EntityType::kItem);
  }
}

}  // namespace
}  // namespace xfair
