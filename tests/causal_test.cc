// Tests for src/causal: DAG invariants, SCM sampling/abduction/
// counterfactuals, OLS fitting, total effects, and the credit world.

#include <gtest/gtest.h>

#include <cmath>

#include "src/causal/worlds.h"
#include "src/util/stats.h"

namespace xfair {
namespace {

Dag ChainDag() {
  Dag dag;
  dag.AddNode("a");
  dag.AddNode("b");
  dag.AddNode("c");
  EXPECT_TRUE(dag.AddEdge(0, 1).ok());
  EXPECT_TRUE(dag.AddEdge(1, 2).ok());
  return dag;
}

TEST(Dag, RejectsCycle) {
  Dag dag = ChainDag();
  Status s = dag.AddEdge(2, 0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(dag.AddEdge(0, 0).code(), StatusCode::kFailedPrecondition);
}

TEST(Dag, AddEdgeIdempotent) {
  Dag dag = ChainDag();
  EXPECT_TRUE(dag.AddEdge(0, 1).ok());
  EXPECT_EQ(dag.children(0).size(), 1u);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  Dag dag;
  for (int i = 0; i < 5; ++i) dag.AddNode("n" + std::to_string(i));
  ASSERT_TRUE(dag.AddEdge(3, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 4).ok());
  ASSERT_TRUE(dag.AddEdge(0, 4).ok());
  ASSERT_TRUE(dag.AddEdge(3, 0).ok());
  auto order = dag.TopologicalOrder();
  std::vector<size_t> pos(5);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[3], pos[1]);
  EXPECT_LT(pos[1], pos[4]);
  EXPECT_LT(pos[0], pos[4]);
  EXPECT_LT(pos[3], pos[0]);
}

TEST(Dag, AllPathsEnumeratesDiamond) {
  Dag dag;
  for (int i = 0; i < 4; ++i) dag.AddNode("n" + std::to_string(i));
  // 0 -> 1 -> 3, 0 -> 2 -> 3, 0 -> 3.
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  ASSERT_TRUE(dag.AddEdge(1, 3).ok());
  ASSERT_TRUE(dag.AddEdge(2, 3).ok());
  ASSERT_TRUE(dag.AddEdge(0, 3).ok());
  auto paths = dag.AllPaths(0, 3);
  EXPECT_EQ(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 3u);
  }
}

TEST(Dag, Descendants) {
  Dag dag = ChainDag();
  EXPECT_EQ(dag.Descendants(0), (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(dag.Descendants(2).empty());
}

TEST(Dag, IndexOf) {
  Dag dag = ChainDag();
  auto i = dag.IndexOf("b");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, 1u);
  EXPECT_FALSE(dag.IndexOf("zzz").ok());
}

Scm ChainScm() {
  // a = 1 + u_a; b = 2a + u_b; c = -b + 0.5 + u_c.
  Scm scm(ChainDag());
  scm.SetEquation(0, {}, 1.0, 0.5);
  scm.SetEquation(1, {2.0}, 0.0, 0.5);
  scm.SetEquation(2, {-1.0}, 0.5, 0.5);
  return scm;
}

TEST(Scm, SampleMeansMatchStructure) {
  Scm scm = ChainScm();
  Rng rng(1);
  RunningStats sa, sb, sc;
  for (int i = 0; i < 20000; ++i) {
    Vector x = scm.Sample(&rng);
    sa.Add(x[0]);
    sb.Add(x[1]);
    sc.Add(x[2]);
  }
  EXPECT_NEAR(sa.mean(), 1.0, 0.03);
  EXPECT_NEAR(sb.mean(), 2.0, 0.05);
  EXPECT_NEAR(sc.mean(), -1.5, 0.05);
}

TEST(Scm, AbductionRecoversNoiseExactly) {
  Scm scm = ChainScm();
  Rng rng(2);
  Vector x = scm.Sample(&rng);
  Vector u = scm.Abduct(x);
  // Re-simulate with the recovered noise: must reproduce x exactly.
  Vector re(3);
  re[0] = 1.0 + u[0];
  re[1] = 2.0 * re[0] + u[1];
  re[2] = -re[1] + 0.5 + u[2];
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(re[i], x[i], 1e-12);
}

TEST(Scm, CounterfactualNoInterventionIsIdentity) {
  Scm scm = ChainScm();
  Rng rng(3);
  Vector x = scm.Sample(&rng);
  Vector cf = scm.Counterfactual(x, {});
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(cf[i], x[i], 1e-12);
}

TEST(Scm, CounterfactualPropagatesDownstreamOnly) {
  Scm scm = ChainScm();
  Rng rng(4);
  Vector x = scm.Sample(&rng);
  Vector cf = scm.Counterfactual(x, {{1, x[1] + 1.0}});
  EXPECT_NEAR(cf[0], x[0], 1e-12);          // Upstream untouched.
  EXPECT_NEAR(cf[1], x[1] + 1.0, 1e-12);    // Forced.
  EXPECT_NEAR(cf[2], x[2] - 1.0, 1e-12);    // c responds with weight -1.
}

TEST(Scm, SampleDoBreaksDependence) {
  Scm scm = ChainScm();
  Rng rng(5);
  RunningStats sb;
  for (int i = 0; i < 5000; ++i) {
    Vector x = scm.SampleDo({{0, 10.0}}, &rng);
    EXPECT_DOUBLE_EQ(x[0], 10.0);
    sb.Add(x[1]);
  }
  EXPECT_NEAR(sb.mean(), 20.0, 0.1);
}

TEST(Scm, TotalEffectClosedForm) {
  Scm scm = ChainScm();
  // Effect of a: +1 on c is 2 * (-1) = -2.
  EXPECT_NEAR(scm.TotalEffect(0, 2, 0.0, 1.0), -2.0, 1e-12);
  EXPECT_NEAR(scm.TotalEffect(0, 1, 0.0, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(scm.TotalEffect(2, 0, 0.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(scm.TotalEffect(1, 1, 0.0, 2.0), 2.0, 1e-12);
}

TEST(Scm, FitFromDataRecoversWeights) {
  Scm truth = ChainScm();
  Rng rng(6);
  Matrix data(3000, 3);
  for (size_t r = 0; r < data.rows(); ++r) data.SetRow(r, truth.Sample(&rng));
  Scm fitted(ChainDag());
  ASSERT_TRUE(fitted.FitFromData(data).ok());
  EXPECT_NEAR(fitted.EdgeWeight(0, 1), 2.0, 0.05);
  EXPECT_NEAR(fitted.EdgeWeight(1, 2), -1.0, 0.05);
  EXPECT_NEAR(fitted.bias(0), 1.0, 0.05);
  EXPECT_NEAR(fitted.noise_std(1), 0.5, 0.05);
}

TEST(Scm, FitRejectsBadShapes) {
  Scm scm(ChainDag());
  EXPECT_EQ(scm.FitFromData(Matrix(10, 2)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(scm.FitFromData(Matrix(2, 3)).code(),
            StatusCode::kInvalidArgument);
}

TEST(CreditWorld, DisparityShowsUpInIncome) {
  CausalWorld world = MakeCreditWorld(1.0);
  Dataset d = world.GenerateDataset(6000, 7);
  Vector income_g0, income_g1;
  auto idx = world.scm.dag().IndexOf("income");
  ASSERT_TRUE(idx.ok());
  for (size_t i = 0; i < d.size(); ++i) {
    (d.group(i) == 1 ? income_g1 : income_g0)
        .push_back(d.x().At(i, *idx));
  }
  EXPECT_NEAR(Mean(income_g0) - Mean(income_g1), 1.0, 0.1);
}

TEST(CreditWorld, ZeroDisparityEqualizesGroups) {
  CausalWorld world = MakeCreditWorld(0.0);
  Dataset d = world.GenerateDataset(6000, 8);
  EXPECT_LT(std::fabs(d.BaseRate(0) - d.BaseRate(1)), 0.05);
}

TEST(CreditWorld, SensitiveInterventionMovesIncomeNotZipNoise) {
  CausalWorld world = MakeCreditWorld(1.0);
  Rng rng(9);
  Vector x = world.scm.SampleDo({{world.sensitive, 1.0}}, &rng);
  Vector cf = world.scm.Counterfactual(x, {{world.sensitive, 0.0}});
  auto income = world.scm.dag().IndexOf("income");
  auto zip = world.scm.dag().IndexOf("zip_risk");
  ASSERT_TRUE(income.ok() && zip.ok());
  EXPECT_NEAR(cf[*income] - x[*income], 1.0, 1e-9);   // -(-1.0) * (0-1)
  EXPECT_NEAR(cf[*zip] - x[*zip], -3.0, 1e-9);        // 3.0 * (0-1)
}

}  // namespace
}  // namespace xfair
