// Tests for src/core: taxonomy string rendering and the approach registry
// (Table I coverage + every runner executes and produces a measurement).

#include <gtest/gtest.h>

#include <set>

#include "src/core/registry.h"

namespace xfair {
namespace {

TEST(Taxonomy, GoalsToString) {
  EXPECT_EQ((Goals{true, false, false}).ToString(), "E");
  EXPECT_EQ((Goals{true, true, true}).ToString(), "E, U, M");
  EXPECT_EQ((Goals{false, false, false}).ToString(), "-");
  EXPECT_EQ((Goals{false, true, true}).ToString(), "U, M");
}

TEST(Taxonomy, EnumStrings) {
  EXPECT_STREQ(ToString(ExplanationStage::kPostHoc), "Post");
  EXPECT_STREQ(ToString(ModelAccess::kBlackBox), "B");
  EXPECT_STREQ(ToString(Agnosticism::kAgnostic), "A");
  EXPECT_STREQ(ToString(Coverage::kBoth), "Both");
  EXPECT_STREQ(ToString(FairnessLevel::kGroup), "Group");
  EXPECT_STREQ(ToString(FairnessTask::kRecommendation), "Recs");
  EXPECT_STREQ(ToString(MitigationStage::kIn), "In-processing");
  EXPECT_STREQ(ToString(FairnessCriterion::kCausal), "Causal");
}

TEST(Registry, CoversAllTableOneRows) {
  // The paper's Table I rows, by citation key.
  const std::set<std::string> expected = {
      "[10]", "[63]", "[71]", "[72]", "[73]", "[74]", "[75]",
      "[77]", "[82]", "[79]", "[80]", "[89]", "[81]", "[84]",
      "[86]", "[87]", "[88]", "[90]", "[83]", "[91]", "[44]"};
  std::set<std::string> found;
  for (const auto& a : ApproachRegistry()) {
    if (a.in_table1) found.insert(a.citation);
  }
  EXPECT_EQ(found, expected);
}

TEST(Registry, ExtrasAreMarked) {
  size_t extras = 0;
  for (const auto& a : ApproachRegistry()) extras += !a.in_table1;
  EXPECT_GE(extras, 2u);  // [65] and [76] at minimum.
}

TEST(Registry, DescriptorsAreWellFormed) {
  for (const auto& a : ApproachRegistry()) {
    EXPECT_FALSE(a.citation.empty());
    EXPECT_FALSE(a.name.empty());
    EXPECT_FALSE(a.explanation_type.empty()) << a.citation;
    EXPECT_FALSE(a.output.empty()) << a.citation;
    EXPECT_FALSE(a.fairness_type.empty()) << a.citation;
    EXPECT_NE(a.goals.ToString(), "-") << a.citation;
    EXPECT_TRUE(a.runner != nullptr) << a.citation;
  }
}

TEST(Registry, EveryRunnerProducesMeasurement) {
  // One shared fixture; every approach must execute end-to-end.
  const RunContext ctx = RunContext::Make(2024);
  for (const auto& a : ApproachRegistry()) {
    const std::string measured = a.runner(ctx);
    EXPECT_FALSE(measured.empty()) << a.citation;
    EXPECT_NE(measured, "n/a") << a.citation << " " << a.name;
  }
}

TEST(Registry, RunnersAreDeterministicForSameSeed) {
  const RunContext a = RunContext::Make(7);
  const RunContext b = RunContext::Make(7);
  for (const auto& approach : ApproachRegistry()) {
    EXPECT_EQ(approach.runner(a), approach.runner(b)) << approach.citation;
  }
}

}  // namespace
}  // namespace xfair
