// Tests for src/data: schema semantics, dataset operations, scaling,
// generators' planted bias, CSV round-trip.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/data/csv.h"
#include "src/data/generators.h"
#include "src/data/scaler.h"
#include "src/util/stats.h"

namespace xfair {
namespace {

Schema TinySchema() {
  std::vector<FeatureSpec> f;
  f.push_back({"s", FeatureKind::kBinary, 0, Actionability::kImmutable, 0, 1});
  f.push_back({"a", FeatureKind::kNumeric, 0, Actionability::kIncreaseOnly,
               -10, 10});
  f.push_back({"b", FeatureKind::kNumeric, 0, Actionability::kDecreaseOnly,
               -10, 10});
  return Schema(std::move(f), 0);
}

Dataset TinyData() {
  Matrix x = Matrix::FromRows({{1, 0.5, 2.0},
                               {0, 1.5, -1.0},
                               {1, -0.5, 0.0},
                               {0, 2.5, 1.0}});
  return Dataset(TinySchema(), std::move(x), {1, 0, 0, 1}, {1, 0, 1, 0});
}

TEST(Schema, IndexOfFindsAndFails) {
  Schema s = TinySchema();
  auto idx = s.IndexOf("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_FALSE(s.IndexOf("nope").ok());
}

TEST(Schema, MoveAllowedRespectsActionability) {
  Schema s = TinySchema();
  EXPECT_FALSE(s.MoveAllowed(0, 1.0));   // immutable
  EXPECT_TRUE(s.MoveAllowed(0, 0.0));    // no-op always allowed
  EXPECT_TRUE(s.MoveAllowed(1, 1.0));    // increase-only up
  EXPECT_FALSE(s.MoveAllowed(1, -1.0));  // increase-only down
  EXPECT_TRUE(s.MoveAllowed(2, -1.0));
  EXPECT_FALSE(s.MoveAllowed(2, 1.0));
}

TEST(Schema, WithoutFeatureRemapsSensitiveIndex) {
  Schema s = TinySchema();
  Schema dropped = s.WithoutFeature(0);
  EXPECT_EQ(dropped.num_features(), 2u);
  EXPECT_EQ(dropped.sensitive_index(), -1);
  Schema dropped_b = s.WithoutFeature(2);
  EXPECT_EQ(dropped_b.sensitive_index(), 0);
  Schema mid = Schema(
      {FeatureSpec{"x"}, FeatureSpec{"s", FeatureKind::kBinary},
       FeatureSpec{"y"}},
      1);
  EXPECT_EQ(mid.WithoutFeature(0).sensitive_index(), 0);
}

TEST(Dataset, BasicAccessors) {
  Dataset d = TinyData();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_EQ(d.label(0), 1);
  EXPECT_EQ(d.group(1), 0);
  EXPECT_EQ(d.instance(2), Vector({1, -0.5, 0.0}));
}

TEST(Dataset, GroupIndicesAndBaseRate) {
  Dataset d = TinyData();
  EXPECT_EQ(d.GroupIndices(1), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(d.GroupIndices(0), (std::vector<size_t>{1, 3}));
  EXPECT_DOUBLE_EQ(d.BaseRate(1), 0.5);  // labels 1, 0
  EXPECT_DOUBLE_EQ(d.BaseRate(0), 0.5);  // labels 0, 1
}

TEST(Dataset, SubsetPreservesRows) {
  Dataset d = TinyData();
  Dataset s = d.Subset({3, 0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.instance(0), d.instance(3));
  EXPECT_EQ(s.label(1), d.label(0));
  EXPECT_EQ(s.group(0), d.group(3));
}

TEST(Dataset, WithoutFeatureDropsColumn) {
  Dataset d = TinyData();
  Dataset w = d.WithoutFeature(1);
  EXPECT_EQ(w.num_features(), 2u);
  EXPECT_EQ(w.instance(0), Vector({1, 2.0}));
  // Group membership survives dropping any column.
  EXPECT_EQ(w.groups(), d.groups());
}

TEST(Dataset, SplitPartitionsAllRows) {
  CreditGen gen;
  Dataset d = gen.Generate(200, 42);
  Rng rng(1);
  auto [train, test] = d.Split(0.75, &rng);
  EXPECT_EQ(train.size() + test.size(), d.size());
  EXPECT_NEAR(static_cast<double>(train.size()), 150.0, 1.0);
}

TEST(Scaler, TransformStandardizesNumericOnly) {
  CreditGen gen;
  Dataset d = gen.Generate(500, 7);
  StandardScaler scaler;
  scaler.Fit(d);
  Dataset t = scaler.Transform(d);
  // Numeric column "income" (index 2) becomes ~N(0,1).
  Vector col = t.x().Col(2);
  EXPECT_NEAR(Mean(col), 0.0, 1e-9);
  EXPECT_NEAR(Stddev(col), 1.0, 1e-9);
  // Binary sensitive column (index 0) is untouched.
  EXPECT_EQ(t.x().Col(0), d.x().Col(0));
}

TEST(Scaler, InverseRoundTrip) {
  CreditGen gen;
  Dataset d = gen.Generate(100, 3);
  StandardScaler scaler;
  scaler.Fit(d);
  Vector x = d.instance(17);
  Vector back = scaler.InverseInstance(scaler.TransformInstance(x));
  for (size_t c = 0; c < x.size(); ++c) EXPECT_NEAR(back[c], x[c], 1e-9);
}

// --- generator properties, parameterized over the three generators ---

using GenFn = Dataset (*)(const BiasConfig&, size_t, uint64_t);

Dataset MakeCredit(const BiasConfig& c, size_t n, uint64_t s) {
  return CreditGen(c).Generate(n, s);
}
Dataset MakeRecidivism(const BiasConfig& c, size_t n, uint64_t s) {
  return RecidivismGen(c).Generate(n, s);
}
Dataset MakeIncome(const BiasConfig& c, size_t n, uint64_t s) {
  return IncomeGen(c).Generate(n, s);
}

class GeneratorTest : public ::testing::TestWithParam<GenFn> {};

TEST_P(GeneratorTest, DeterministicForSeed) {
  BiasConfig cfg;
  Dataset a = GetParam()(cfg, 50, 99);
  Dataset b = GetParam()(cfg, 50, 99);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.instance(i), b.instance(i));
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_EQ(a.group(i), b.group(i));
  }
}

TEST_P(GeneratorTest, RespectsBounds) {
  BiasConfig cfg;
  Dataset d = GetParam()(cfg, 400, 5);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t c = 0; c < d.num_features(); ++c) {
      const auto& spec = d.schema().feature(c);
      EXPECT_GE(d.x().At(i, c), spec.lower) << spec.name;
      EXPECT_LE(d.x().At(i, c), spec.upper) << spec.name;
    }
  }
}

TEST_P(GeneratorTest, PlantedBiasCreatesBaseRateGap) {
  BiasConfig biased;
  biased.score_shift = 1.2;
  biased.label_bias = 0.15;
  Dataset d = GetParam()(biased, 4000, 11);
  EXPECT_GT(d.BaseRate(0) - d.BaseRate(1), 0.1);
}

TEST_P(GeneratorTest, UnbiasedConfigHasSmallGap) {
  BiasConfig fair;
  fair.score_shift = 0.0;
  fair.label_bias = 0.0;
  fair.proxy_strength = 0.0;
  fair.qualification_gap = 0.0;
  Dataset d = GetParam()(fair, 6000, 13);
  EXPECT_LT(std::abs(d.BaseRate(0) - d.BaseRate(1)), 0.06);
}

TEST_P(GeneratorTest, ProtectedFractionMatches) {
  BiasConfig cfg;
  cfg.protected_fraction = 0.25;
  Dataset d = GetParam()(cfg, 4000, 17);
  EXPECT_NEAR(static_cast<double>(d.GroupIndices(1).size()) /
                  static_cast<double>(d.size()),
              0.25, 0.03);
}

TEST_P(GeneratorTest, SensitiveColumnMatchesGroups) {
  BiasConfig cfg;
  Dataset d = GetParam()(cfg, 200, 19);
  const int s = d.schema().sensitive_index();
  ASSERT_GE(s, 0);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(static_cast<int>(d.x().At(i, static_cast<size_t>(s))),
              d.group(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorTest,
                         ::testing::Values(&MakeCredit, &MakeRecidivism,
                                           &MakeIncome));

TEST(Generators, ProxyCorrelatesWithGroup) {
  BiasConfig cfg;
  cfg.proxy_strength = 0.9;
  Dataset d = CreditGen(cfg).Generate(2000, 23);
  Vector zip = d.x().Col(7);
  Vector grp(d.size());
  for (size_t i = 0; i < d.size(); ++i) grp[i] = d.group(i);
  EXPECT_GT(PearsonCorrelation(zip, grp), 0.6);

  cfg.proxy_strength = 0.0;
  Dataset d0 = CreditGen(cfg).Generate(2000, 23);
  Vector zip0 = d0.x().Col(7);
  Vector grp0(d0.size());
  for (size_t i = 0; i < d0.size(); ++i) grp0[i] = d0.group(i);
  EXPECT_LT(std::abs(PearsonCorrelation(zip0, grp0)), 0.1);
}

TEST(Csv, RoundTrip) {
  CreditGen gen;
  Dataset d = gen.Generate(60, 31);
  const std::string path = "/tmp/xfair_csv_test.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());
  auto r = ReadCsv(d.schema(), path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(r->label(i), d.label(i));
    EXPECT_EQ(r->group(i), d.group(i));
    for (size_t c = 0; c < d.num_features(); ++c)
      EXPECT_NEAR(r->x().At(i, c), d.x().At(i, c), 1e-4);
  }
  std::remove(path.c_str());
}

TEST(Csv, MissingFileFails) {
  auto r = ReadCsv(TinySchema(), "/tmp/definitely_not_here_xfair.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Csv, MalformedRowFails) {
  const std::string path = "/tmp/xfair_csv_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("s,a,b,label,group\n1,2,notanumber,1,0\n", f);
    fclose(f);
  }
  auto r = ReadCsv(TinySchema(), path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

namespace {

void WriteFile(const std::string& path, const char* contents) {
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs(contents, f);
  fclose(f);
}

}  // namespace

TEST(Csv, QuotedFieldsWithCommasAndEscapedQuotes) {
  // Header names containing commas and quotes must be quotable per
  // RFC 4180; quoted numeric cells unquote before parsing.
  const std::string path = "/tmp/xfair_csv_quoted.csv";
  WriteFile(path,
            "s,\"age, years\",\"said \"\"hi\"\"\",label,group\n"
            "1,\"2.5\",3,1,0\n"
            "0,4.5,\"-1\",0,1\n");
  auto schema = InferSchemaFromCsv(path);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->feature(1).name, "age, years");
  EXPECT_EQ(schema->feature(2).name, "said \"hi\"");
  auto r = ReadCsv(*schema, path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ(r->x().At(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(r->x().At(1, 2), -1.0);
  std::remove(path.c_str());
}

TEST(Csv, CrlfLineEndingsAccepted) {
  const std::string path = "/tmp/xfair_csv_crlf.csv";
  WriteFile(path, "s,a,b,label,group\r\n1,2,3,1,0\r\n0,4,5,0,1\r\n");
  auto r = ReadCsv(TinySchema(), path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ(r->x().At(1, 2), 5.0);
  std::remove(path.c_str());
}

TEST(Csv, UnterminatedQuoteFailsWithLineNumber) {
  const std::string path = "/tmp/xfair_csv_unterminated.csv";
  WriteFile(path, "s,a,b,label,group\n1,\"2,3,1,0\n");
  auto r = ReadCsv(TinySchema(), path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(Csv, QuoteInsideUnquotedFieldFails) {
  const std::string path = "/tmp/xfair_csv_strayquote.csv";
  WriteFile(path, "s,a,b,label,group\n1,2\"bad\",3,1,0\n");
  auto r = ReadCsv(TinySchema(), path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(Csv, WriteQuotesSpecialFeatureNamesAndRoundTrips) {
  std::vector<FeatureSpec> f;
  f.push_back({"s", FeatureKind::kBinary, 0, Actionability::kImmutable, 0, 1});
  f.push_back({"income, monthly", FeatureKind::kNumeric, 0,
               Actionability::kAny, -10, 10});
  f.push_back({"b", FeatureKind::kNumeric, 0, Actionability::kAny, -10, 10});
  Schema schema(std::move(f), 0);
  Matrix x = Matrix::FromRows({{1, 0.5, 2.0}, {0, 1.5, -1.0}});
  Dataset d(schema, std::move(x), {1, 0}, {1, 0});
  const std::string path = "/tmp/xfair_csv_quoted_names.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());
  auto inferred = InferSchemaFromCsv(path);
  ASSERT_TRUE(inferred.ok()) << inferred.status().ToString();
  EXPECT_EQ(inferred->feature(1).name, "income, monthly");
  auto r = ReadCsv(schema, path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_NEAR(r->x().At(1, 1), 1.5, 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xfair
