// Tests for src/explain: counterfactual generators (validity, feasibility,
// sparsity), Shapley engine (axioms, convergence), importance, PDP,
// surrogates, rules, influence functions, prototypes.

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generators.h"
#include "src/data/scaler.h"
#include "src/util/stats.h"
#include "src/explain/counterfactual.h"
#include "src/explain/importance.h"
#include "src/explain/influence.h"
#include "src/explain/prototypes.h"
#include "src/explain/rules.h"
#include "src/explain/shap.h"
#include "src/explain/surrogate.h"
#include "src/model/logistic_regression.h"
#include "src/model/random_forest.h"

namespace xfair {
namespace {

struct CreditFixture {
  Dataset data;
  LogisticRegression model;

  static CreditFixture Make(uint64_t seed = 42) {
    CreditFixture f{CreditGen().Generate(1200, seed), {}};
    XFAIR_CHECK(f.model.Fit(f.data).ok());
    return f;
  }

  /// Index of some instance predicted unfavorably.
  size_t NegativeInstance() const {
    for (size_t i = 0; i < data.size(); ++i)
      if (model.Predict(data.instance(i)) == 0) return i;
    XFAIR_CHECK_MSG(false, "no negative instance found");
    return 0;
  }
};

TEST(Counterfactual, WachterFlipsClassAndRespectsImmutables) {
  auto f = CreditFixture::Make();
  const size_t i = f.NegativeInstance();
  const Vector x = f.data.instance(i);
  CounterfactualConfig cfg;
  auto r = WachterCounterfactual(f.model, f.data.schema(), x, cfg);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(f.model.Predict(r.counterfactual), 1);
  EXPECT_GT(r.distance, 0.0);
  // Immutable features (protected=0, age=1) must not move.
  EXPECT_DOUBLE_EQ(r.counterfactual[0], x[0]);
  EXPECT_DOUBLE_EQ(r.counterfactual[1], x[1]);
  // Increase-only income must not decrease; decrease-only debt must not
  // increase.
  EXPECT_GE(r.counterfactual[2], x[2]);
  EXPECT_LE(r.counterfactual[5], x[5]);
}

TEST(Counterfactual, GrowingSpheresFlipsClassBlackBox) {
  auto f = CreditFixture::Make();
  RandomForest forest;
  RandomForestOptions fo;
  fo.num_trees = 15;
  ASSERT_TRUE(forest.Fit(f.data, fo).ok());
  Rng rng(1);
  size_t found = 0, tried = 0;
  for (size_t i = 0; i < f.data.size() && tried < 20; ++i) {
    const Vector x = f.data.instance(i);
    if (forest.Predict(x) != 0) continue;
    ++tried;
    auto r = GrowingSpheresCounterfactual(forest, f.data.schema(), x, {},
                                          &rng);
    if (!r.valid) continue;
    ++found;
    EXPECT_EQ(forest.Predict(r.counterfactual), 1);
    EXPECT_DOUBLE_EQ(r.counterfactual[0], x[0]);  // Immutable.
  }
  EXPECT_GE(found, tried / 2) << "growing spheres should usually succeed";
}

TEST(Counterfactual, AlreadyTargetClassIsTrivial) {
  auto f = CreditFixture::Make();
  size_t pos = 0;
  for (size_t i = 0; i < f.data.size(); ++i)
    if (f.model.Predict(f.data.instance(i)) == 1) {
      pos = i;
      break;
    }
  const Vector x = f.data.instance(pos);
  auto r = WachterCounterfactual(f.model, f.data.schema(), x, {});
  EXPECT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.sparsity, 0u);
}

TEST(Counterfactual, SparsityNeverExceedsChangedCount) {
  auto f = CreditFixture::Make();
  Rng rng(2);
  const size_t i = f.NegativeInstance();
  auto r = GrowingSpheresCounterfactual(f.model, f.data.schema(),
                                        f.data.instance(i), {}, &rng);
  ASSERT_TRUE(r.valid);
  EXPECT_LE(r.sparsity, f.data.num_features());
  EXPECT_EQ(r.sparsity,
            NonZeroCount(Sub(r.counterfactual, f.data.instance(i)), 1e-12));
}

TEST(Counterfactual, UnconstrainedMayTouchSensitive) {
  auto f = CreditFixture::Make();
  CounterfactualConfig cfg;
  cfg.respect_actionability = false;
  const size_t i = f.NegativeInstance();
  auto r =
      WachterCounterfactual(f.model, f.data.schema(), f.data.instance(i), cfg);
  ASSERT_TRUE(r.valid);
  // With actionability off, bounds still hold.
  for (size_t c = 0; c < r.counterfactual.size(); ++c) {
    EXPECT_GE(r.counterfactual[c], f.data.schema().feature(c).lower);
    EXPECT_LE(r.counterfactual[c], f.data.schema().feature(c).upper);
  }
}

TEST(Counterfactual, NormalizedDistanceIsScaleAware) {
  Schema schema(
      {FeatureSpec{"small", FeatureKind::kNumeric, 0, Actionability::kAny,
                   0.0, 1.0},
       FeatureSpec{"big", FeatureKind::kNumeric, 0, Actionability::kAny, 0.0,
                   100.0}},
      -1);
  // A change of 0.5 on each feature: the small one dominates.
  EXPECT_NEAR(NormalizedDistance(schema, {0.0, 0.0}, {0.5, 0.0}), 0.5,
              1e-12);
  EXPECT_NEAR(NormalizedDistance(schema, {0.0, 0.0}, {0.0, 0.5}), 0.005,
              1e-12);
}

TEST(Counterfactual, ForNegativesCoversAllNegatives) {
  auto f = CreditFixture::Make();
  Rng rng(3);
  auto group = CounterfactualsForNegatives(f.model, f.data, {}, &rng);
  ASSERT_EQ(group.indices.size(), group.results.size());
  for (size_t k = 0; k < group.indices.size(); ++k) {
    EXPECT_EQ(f.model.Predict(f.data.instance(group.indices[k])), 0);
  }
  size_t negatives = 0;
  for (size_t i = 0; i < f.data.size(); ++i)
    negatives += (f.model.Predict(f.data.instance(i)) == 0);
  EXPECT_EQ(group.indices.size(), negatives);
}

// --- Shapley engine ---

TEST(Shapley, ExactOnAdditiveGame) {
  // v(S) = sum of member weights: Shapley value = own weight.
  Vector weights = {1.0, -2.0, 3.5, 0.0};
  CoalitionValue v = [&](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) acc += weights[i];
    return acc;
  };
  Vector phi = ExactShapley(v, 4);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(phi[i], weights[i], 1e-12);
}

TEST(Shapley, ExactOnUnanimityGame) {
  // v(S) = 1 iff S contains both 0 and 1: classic split of 1/2 each.
  CoalitionValue v = [](const std::vector<bool>& mask) {
    return mask[0] && mask[1] ? 1.0 : 0.0;
  };
  Vector phi = ExactShapley(v, 3);
  EXPECT_NEAR(phi[0], 0.5, 1e-12);
  EXPECT_NEAR(phi[1], 0.5, 1e-12);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
}

TEST(Shapley, EfficiencyAxiom) {
  // Shapley values must sum to v(full) - v(empty) for any game.
  Rng rng(4);
  Vector table(1u << 5);
  for (double& t : table) t = rng.Uniform(-1, 1);
  CoalitionValue v = [&](const std::vector<bool>& mask) {
    size_t s = 0;
    for (size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) s |= (1u << i);
    return table[s];
  };
  Vector phi = ExactShapley(v, 5);
  double sum = 0.0;
  for (double p : phi) sum += p;
  EXPECT_NEAR(sum, table[31] - table[0], 1e-9);
}

TEST(Shapley, SampledConvergesToExact) {
  Rng seed_rng(5);
  Vector table(1u << 6);
  for (double& t : table) t = seed_rng.Uniform(-1, 1);
  CoalitionValue v = [&](const std::vector<bool>& mask) {
    size_t s = 0;
    for (size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) s |= (1u << i);
    return table[s];
  };
  Vector exact = ExactShapley(v, 6);
  Rng rng(6);
  Vector sampled = SampledShapley(v, 6, 3000, &rng);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(sampled[i], exact[i], 0.05);
}

TEST(Shapley, InstanceExplanationEfficiency) {
  auto f = CreditFixture::Make();
  Dataset background = f.data.Subset({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Vector x = f.data.instance(f.NegativeInstance());
  Rng rng(7);
  Vector phi = ShapExplainInstance(f.model, background, x, 200, &rng);
  double base = 0.0;
  for (size_t b = 0; b < background.size(); ++b)
    base += f.model.PredictProba(background.instance(b));
  base /= static_cast<double>(background.size());
  double sum = 0.0;
  for (double p : phi) sum += p;
  EXPECT_NEAR(sum, f.model.PredictProba(x) - base, 1e-9);
}

// --- importance / PDP ---

TEST(Importance, IrrelevantFeatureScoresLow) {
  // Model depends only on feature 0.
  Dataset d = CreditGen().Generate(800, 8);
  LogisticRegression lr;
  Vector w(d.num_features(), 0.0);
  w[2] = 2.0;  // income only
  lr.SetParameters(w, -10.0);
  Rng rng(9);
  Vector imp = PermutationImportance(lr, d, 3, &rng);
  for (size_t c = 0; c < d.num_features(); ++c) {
    if (c == 2) continue;
    EXPECT_LE(std::fabs(imp[c]), std::fabs(imp[2]) + 1e-9);
  }
}

TEST(Importance, PdpMonotoneForMonotoneModel) {
  Dataset d = CreditGen().Generate(400, 10);
  LogisticRegression lr;
  Vector w(d.num_features(), 0.0);
  w[2] = 1.0;
  lr.SetParameters(w, -6.0);
  auto pd = ComputePartialDependence(lr, d, 2, 10);
  ASSERT_EQ(pd.grid_values.size(), 10u);
  for (size_t g = 1; g < 10; ++g)
    EXPECT_GE(pd.mean_predictions[g], pd.mean_predictions[g - 1] - 1e-12);
}

// --- surrogates ---

TEST(Surrogate, LocalRecoversLinearModelDirection) {
  auto f = CreditFixture::Make();
  Rng rng(11);
  const Vector x = f.data.instance(5);
  auto s = FitLocalSurrogate(f.model, f.data, x, {}, &rng);
  EXPECT_GT(s.fidelity, 0.5);  // sigmoid curvature caps local-linear R^2
  // Signs of local coefficients should match the global linear model for
  // the highest-weight feature.
  size_t top = 0;
  for (size_t c = 1; c < f.model.weights().size(); ++c)
    if (std::fabs(f.model.weights()[c]) >
        std::fabs(f.model.weights()[top]))
      top = c;
  EXPECT_GT(s.coefficients[top] * f.model.weights()[top], 0.0);
}

TEST(Surrogate, GlobalFidelityHighOnTreeFriendlyModel) {
  auto f = CreditFixture::Make();
  auto g = FitGlobalSurrogate(f.model, f.data, 5);
  EXPECT_GT(g.fidelity, 0.85);
}

// --- rules ---

TEST(Rules, ExtractedRulesPartitionData) {
  auto f = CreditFixture::Make();
  DecisionTree tree;
  DecisionTreeOptions opts;
  opts.max_depth = 4;
  ASSERT_TRUE(tree.Fit(f.data, opts).ok());
  auto rules = RulesFromTree(tree);
  ASSERT_FALSE(rules.empty());
  // Every instance matches exactly one rule, and the rule's prediction
  // equals the tree's.
  for (size_t i = 0; i < 100; ++i) {
    const Vector x = f.data.instance(i);
    size_t matches = 0;
    for (const auto& rule : rules) {
      if (rule.Matches(x)) {
        ++matches;
        EXPECT_NEAR(rule.prediction, tree.PredictProba(x), 1e-12);
      }
    }
    EXPECT_EQ(matches, 1u);
  }
  // Supports sum to 1.
  double support = 0.0;
  for (const auto& r : rules) support += r.support;
  EXPECT_NEAR(support, 1.0, 1e-9);
}

TEST(Rules, CoverageMatchesManualCount) {
  Schema schema({FeatureSpec{"a"}}, -1);
  Dataset d(schema, Matrix::FromRows({{1.0}, {2.0}, {3.0}, {4.0}}),
            {0, 0, 1, 1}, {0, 0, 0, 0});
  Rule rule;
  rule.conditions.push_back({0, Condition::Op::kGt, 2.5});
  EXPECT_DOUBLE_EQ(RuleCoverage(rule, d), 0.5);
  EXPECT_FALSE(rule.ToString(schema).empty());
}

// --- influence ---

TEST(Influence, TracksLeaveOneOutRetraining) {
  // Small dataset + tight convergence so leave-one-out retraining deltas
  // are signal, not optimizer noise.
  Dataset d = CreditGen().Generate(250, 40);
  LogisticRegressionOptions opts;
  opts.max_iters = 5000;
  opts.tolerance = 1e-10;
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(d, opts).ok());
  auto analyzer = InfluenceAnalyzer::Create(model, d);
  ASSERT_TRUE(analyzer.ok());

  const Vector x_test = d.instance(0);
  Vector predicted, actual;
  for (size_t i = 0; i < 25; ++i) {
    predicted.push_back(analyzer->InfluenceOnPrediction(x_test, i));
    std::vector<size_t> keep;
    for (size_t j = 0; j < d.size(); ++j)
      if (j != i) keep.push_back(j);
    LogisticRegression retrained;
    ASSERT_TRUE(retrained.Fit(d.Subset(keep), opts).ok());
    actual.push_back(retrained.PredictProba(x_test) -
                     model.PredictProba(x_test));
  }
  EXPECT_GT(PearsonCorrelation(predicted, actual), 0.8)
      << "influence approximation should track retraining deltas";
}

TEST(Influence, ParityInfluenceVectorHasTrainingSize) {
  auto f = CreditFixture::Make();
  auto analyzer = InfluenceAnalyzer::Create(f.model, f.data);
  ASSERT_TRUE(analyzer.ok());
  Vector infl = analyzer->InfluenceOnParityGap(f.data);
  EXPECT_EQ(infl.size(), f.data.size());
  // Not identically zero on a biased dataset.
  EXPECT_GT(Norm2(infl), 0.0);
}

// --- prototypes ---

TEST(Prototypes, ReturnsRequestedCountFromCorrectClass) {
  auto f = CreditFixture::Make();
  Rng rng(12);
  auto protos = ClassPrototypes(f.data, 1, 3, &rng);
  EXPECT_EQ(protos.size(), 3u);
  for (size_t i : protos) EXPECT_EQ(f.data.label(i), 1);
}

TEST(Prototypes, NeighborExplanationFindsBothClasses) {
  auto f = CreditFixture::Make();
  const Vector x = f.data.instance(7);
  auto ne = ExplainByNeighbors(f.data, x, 1);
  EXPECT_EQ(f.data.label(ne.same_label_index), 1);
  EXPECT_EQ(f.data.label(ne.other_label_index), 0);
  EXPECT_GE(ne.same_label_distance, 0.0);
  EXPECT_GE(ne.other_label_distance, 0.0);
}

}  // namespace
}  // namespace xfair
