// Tests for the second extension wave: schema inference from CSV, the
// gradient-boosted model, the education world, counterfactually fair
// training via causal feature selection, and random-SCM round-trip
// properties.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/data/csv.h"
#include "src/data/generators.h"
#include "src/fairness/individual_metrics.h"
#include "src/model/gbm.h"
#include "src/model/metrics.h"
#include "src/mitigate/counterfactual_fair.h"

namespace xfair {
namespace {

// --- schema inference ---

TEST(InferSchema, RecoversNamesKindsAndSensitive) {
  Dataset d = CreditGen().Generate(120, 501);
  const std::string path = "/tmp/xfair_infer_test.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());
  auto schema = InferSchemaFromCsv(path);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema->num_features(), d.num_features());
  for (size_t c = 0; c < d.num_features(); ++c) {
    EXPECT_EQ(schema->feature(c).name, d.schema().feature(c).name);
  }
  // "protected" detected as the immutable sensitive column.
  EXPECT_EQ(schema->sensitive_index(), 0);
  EXPECT_EQ(schema->feature(0).actionability, Actionability::kImmutable);
  EXPECT_EQ(schema->feature(0).kind, FeatureKind::kBinary);
  // Numeric column stays numeric with data-padded bounds.
  EXPECT_EQ(schema->feature(2).kind, FeatureKind::kNumeric);
  Vector income = d.x().Col(2);
  const double lo = *std::min_element(income.begin(), income.end());
  EXPECT_LE(schema->feature(2).lower, lo);
  // The inferred schema round-trips through ReadCsv.
  auto reread = ReadCsv(*schema, path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->size(), d.size());
  std::remove(path.c_str());
}

TEST(InferSchema, RejectsBadHeader) {
  const std::string path = "/tmp/xfair_infer_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("a,b,c\n1,2,3\n", f);  // No label,group suffix.
    fclose(f);
  }
  auto schema = InferSchemaFromCsv(path);
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
  EXPECT_FALSE(InferSchemaFromCsv("/tmp/definitely_absent.csv").ok());
}

// --- gradient boosting ---

TEST(Gbm, BeatsLogisticOnNonlinearData) {
  // XOR-ish data: boosting should crack it, the linear model cannot.
  Rng rng(502);
  std::vector<Vector> rows;
  std::vector<int> labels, groups;
  for (size_t i = 0; i < 700; ++i) {
    const double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    rows.push_back({a, b});
    labels.push_back((a > 0) != (b > 0) ? 1 : 0);
    groups.push_back(0);
  }
  Schema schema({FeatureSpec{"x0"}, FeatureSpec{"x1"}}, -1);
  Dataset d(schema, Matrix::FromRows(rows), labels, groups);
  GradientBoostedTrees gbm;
  ASSERT_TRUE(gbm.Fit(d).ok());
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  EXPECT_GT(Accuracy(gbm, d), 0.9);
  EXPECT_GT(Accuracy(gbm, d), Accuracy(lr, d) + 0.2);
}

TEST(Gbm, CalibratedProbabilitiesOnCredit) {
  Dataset d = CreditGen().Generate(1200, 503);
  Rng rng(504);
  auto [train, test] = d.Split(0.7, &rng);
  GradientBoostedTrees gbm;
  ASSERT_TRUE(gbm.Fit(train).ok());
  EXPECT_GT(Auc(gbm, test), 0.75);
  EXPECT_LT(ExpectedCalibrationError(gbm, test), 0.15);
  for (size_t i = 0; i < 20; ++i) {
    const double p = gbm.PredictProba(test.instance(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Gbm, RejectsEmptyAndZeroRounds) {
  GradientBoostedTrees gbm;
  Schema schema({FeatureSpec{"x"}}, -1);
  Dataset empty(schema, Matrix(0, 1), {}, {});
  EXPECT_FALSE(gbm.Fit(empty).ok());
  Dataset d = CreditGen().Generate(50, 505);
  GbmOptions opts;
  opts.num_rounds = 0;
  EXPECT_FALSE(gbm.Fit(d, opts).ok());
}

TEST(Gbm, MoreRoundsDoNotHurtTrainingFit) {
  Dataset d = CreditGen().Generate(500, 506);
  GbmOptions few;
  few.num_rounds = 5;
  GbmOptions many;
  many.num_rounds = 60;
  GradientBoostedTrees small, large;
  ASSERT_TRUE(small.Fit(d, few).ok());
  ASSERT_TRUE(large.Fit(d, many).ok());
  EXPECT_GE(Accuracy(large, d) + 0.01, Accuracy(small, d));
  EXPECT_EQ(large.num_trees(), 60u);
}

// --- education world + counterfactually fair training ---

TEST(EducationWorld, EducationIsNotADescendantOfS) {
  CausalWorld world = MakeEducationWorld(1.0);
  auto edu = world.scm.dag().IndexOf("education");
  ASSERT_TRUE(edu.ok());
  const auto descendants = world.scm.dag().Descendants(world.sensitive);
  for (size_t node : descendants) EXPECT_NE(node, *edu);
  // And flipping S leaves education untouched in the counterfactual.
  Rng rng(507);
  const Vector x = world.scm.SampleDo({{world.sensitive, 1.0}}, &rng);
  const Vector cf = world.scm.Counterfactual(x, {{world.sensitive, 0.0}});
  EXPECT_NEAR(cf[*edu], x[*edu], 1e-12);
}

TEST(CounterfactualFairTraining, GapVanishesForSubsetModel) {
  CausalWorld world = MakeEducationWorld(1.0);
  Dataset data = world.GenerateDataset(1500, 508);
  // Baseline model using everything is counterfactually unfair.
  LogisticRegression baseline;
  ASSERT_TRUE(baseline.Fit(data).ok());
  const double gap_base =
      CounterfactualFairnessGap(baseline, world, 600, 509);
  // Causal feature selection: only education survives.
  auto fair = TrainCounterfactuallyFairModel(world, data);
  ASSERT_TRUE(fair.ok()) << fair.status().ToString();
  auto edu = world.scm.dag().IndexOf("education");
  ASSERT_TRUE(edu.ok());
  EXPECT_EQ(fair->columns(), std::vector<size_t>{*edu});
  const double gap_fair = CounterfactualFairnessGap(*fair, world, 600, 509);
  EXPECT_GT(gap_base, 0.05);
  EXPECT_NEAR(gap_fair, 0.0, 1e-9)
      << "non-descendant-only model must be exactly CF-fair";
  // It still predicts better than chance (education carries signal).
  EXPECT_GT(Auc(*fair, data), 0.55);
}

TEST(CounterfactualFairTraining, FailsWhenEverythingIsDownstream) {
  CausalWorld world = MakeCreditWorld(1.0);  // No non-descendants.
  Dataset data = world.GenerateDataset(300, 510);
  auto fair = TrainCounterfactuallyFairModel(world, data);
  EXPECT_FALSE(fair.ok());
  EXPECT_EQ(fair.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CounterfactualFairTraining, RejectsMisalignedData) {
  CausalWorld world = MakeEducationWorld(1.0);
  Dataset wrong = CreditGen().Generate(100, 511);  // 8 columns != 5 nodes.
  EXPECT_FALSE(TrainCounterfactuallyFairModel(world, wrong).ok());
}

// --- random-SCM round-trip property ---

class RandomScmTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomScmTest, AbductionCounterfactualRoundTrip) {
  Rng rng(GetParam());
  // Random DAG over 6 nodes: edge i -> j (i < j) with probability 0.4.
  Dag dag;
  const size_t n = 6;
  for (size_t i = 0; i < n; ++i) dag.AddNode("v" + std::to_string(i));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.4)) {
        ASSERT_TRUE(dag.AddEdge(i, j).ok());
      }
    }
  }
  Scm scm(dag);
  for (size_t i = 0; i < n; ++i) {
    Vector w(dag.parents(i).size());
    for (double& v : w) v = rng.Uniform(-1.5, 1.5);
    scm.SetEquation(i, std::move(w), rng.Uniform(-2, 2),
                    rng.Uniform(0.1, 1.0));
  }
  const Vector x = scm.Sample(&rng);
  // Identity counterfactual.
  const Vector same = scm.Counterfactual(x, {});
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(same[i], x[i], 1e-9);
  // Intervening on a node then restoring its factual value is also the
  // identity (the intervention equals what the mechanism produced).
  const size_t node = rng.Below(n);
  const Vector restored = scm.Counterfactual(x, {{node, x[node]}});
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(restored[i], x[i], 1e-9);
  // Interventions only move descendants.
  const Vector shifted = scm.Counterfactual(x, {{node, x[node] + 1.0}});
  const auto descendants = dag.Descendants(node);
  for (size_t i = 0; i < n; ++i) {
    if (i == node) continue;
    const bool is_descendant =
        std::find(descendants.begin(), descendants.end(), i) !=
        descendants.end();
    if (!is_descendant) {
      EXPECT_NEAR(shifted[i], x[i], 1e-9) << "non-descendant " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScmTest,
                         ::testing::Values(601u, 602u, 603u, 604u, 605u));

}  // namespace
}  // namespace xfair
