// Tests for the §V-extension modules: diverse counterfactuals,
// explanation-quality fairness, drift monitoring, the combined tradeoff
// score, and multiclass fairness.

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generators.h"
#include "src/explain/diverse.h"
#include "src/fairness/drift.h"
#include "src/fairness/tradeoff.h"
#include "src/mitigate/inprocess.h"
#include "src/model/random_forest.h"
#include "src/model/softmax_regression.h"
#include "src/unfair/explanation_quality.h"

namespace xfair {
namespace {

struct Fixture {
  Dataset data;
  LogisticRegression model;

  static Fixture Make(double shift = 1.0, uint64_t seed = 201) {
    BiasConfig cfg;
    cfg.score_shift = shift;
    Fixture f{CreditGen(cfg).Generate(900, seed), {}};
    XFAIR_CHECK(f.model.Fit(f.data).ok());
    return f;
  }

  size_t Negative() const {
    for (size_t i = 0; i < data.size(); ++i)
      if (model.Predict(data.instance(i)) == 0) return i;
    XFAIR_CHECK(false);
    return 0;
  }
};

// --- diverse counterfactuals ---

TEST(DiverseCf, ProducesSeparatedValidCounterfactuals) {
  auto f = Fixture::Make();
  Rng rng(1);
  DiverseCfOptions opts;
  opts.k = 3;
  auto set = GenerateDiverseCounterfactuals(
      f.model, f.data.schema(), f.data.instance(f.Negative()), opts, &rng);
  ASSERT_GE(set.results.size(), 2u);
  for (const auto& r : set.results) {
    EXPECT_TRUE(r.valid);
    EXPECT_EQ(f.model.Predict(r.counterfactual), 1);
  }
  EXPECT_GE(set.min_pairwise_distance, opts.min_separation);
  EXPECT_GT(set.mean_cost, 0.0);
}

TEST(DiverseCf, SingleCfHasZeroPairwiseDistance) {
  auto f = Fixture::Make();
  Rng rng(2);
  DiverseCfOptions opts;
  opts.k = 1;
  auto set = GenerateDiverseCounterfactuals(
      f.model, f.data.schema(), f.data.instance(f.Negative()), opts, &rng);
  EXPECT_EQ(set.results.size(), 1u);
  EXPECT_DOUBLE_EQ(set.min_pairwise_distance, 0.0);
}

TEST(DiverseCf, RespectsImmutablesAcrossTheSet) {
  auto f = Fixture::Make();
  Rng rng(3);
  const size_t i = f.Negative();
  const Vector x = f.data.instance(i);
  DiverseCfOptions opts;
  opts.k = 3;
  auto set = GenerateDiverseCounterfactuals(f.model, f.data.schema(), x,
                                            opts, &rng);
  for (const auto& r : set.results) {
    EXPECT_DOUBLE_EQ(r.counterfactual[0], x[0]);  // protected
    EXPECT_DOUBLE_EQ(r.counterfactual[1], x[1]);  // age
  }
}

// --- explanation-quality fairness ---

TEST(ExplanationQuality, ReportsBothGroupsOnBiasedData) {
  auto f = Fixture::Make();
  Rng rng(4);
  ExplanationQualityOptions opts;
  opts.sample_per_group = 12;
  auto report = AuditExplanationQuality(f.model, f.data, opts, &rng);
  EXPECT_EQ(report.sampled_protected, 12u);
  EXPECT_EQ(report.sampled_non_protected, 12u);
  // Fidelity is an R^2-like quantity.
  EXPECT_LE(report.fidelity_protected, 1.0);
  EXPECT_LE(report.fidelity_non_protected, 1.0);
  EXPECT_GT(report.fidelity_protected, 0.0);
  // Gaps are consistent with their components.
  EXPECT_NEAR(report.fidelity_gap,
              report.fidelity_non_protected - report.fidelity_protected,
              1e-12);
  EXPECT_NEAR(report.instability_gap,
              report.instability_protected -
                  report.instability_non_protected,
              1e-12);
}

TEST(ExplanationQuality, StabilityProbeDetectsJumpyModel) {
  // A deep forest has jumpier local behavior than a linear model, so its
  // explanations should be less stable.
  Dataset data = CreditGen().Generate(600, 202);
  LogisticRegression linear;
  ASSERT_TRUE(linear.Fit(data).ok());
  RandomForest forest;
  RandomForestOptions fo;
  fo.num_trees = 10;
  fo.max_depth = 10;
  ASSERT_TRUE(forest.Fit(data, fo).ok());
  Rng rng(5);
  ExplanationQualityOptions opts;
  opts.sample_per_group = 10;
  auto linear_report = AuditExplanationQuality(linear, data, opts, &rng);
  auto forest_report = AuditExplanationQuality(forest, data, opts, &rng);
  const double linear_instability = linear_report.instability_protected +
                                    linear_report.instability_non_protected;
  const double forest_instability = forest_report.instability_protected +
                                    forest_report.instability_non_protected;
  EXPECT_GT(forest_instability, linear_instability);
}

// --- drift monitoring ---

TEST(Drift, NoAlarmOnStableFairStream) {
  BiasConfig fair;
  fair.score_shift = 0.0;
  fair.label_bias = 0.0;
  fair.proxy_strength = 0.0;
  fair.qualification_gap = 0.0;
  Dataset train = CreditGen(fair).Generate(800, 203);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(train).ok());
  FairnessDriftMonitor monitor;
  for (uint64_t b = 0; b < 6; ++b) {
    monitor.ObserveBatch(model, CreditGen(fair).Generate(400, 300 + b));
  }
  EXPECT_FALSE(monitor.alarm());
  EXPECT_NEAR(monitor.TrendSlope(), 0.0, 0.02);
}

TEST(Drift, AlarmsWhenPopulationShifts) {
  // Model trained on fair data, then the population drifts toward the
  // planted-bias regime: the monitored gap grows and trips the alarm.
  BiasConfig fair;
  fair.score_shift = 0.0;
  fair.label_bias = 0.0;
  fair.proxy_strength = 0.0;
  fair.qualification_gap = 0.0;
  Dataset train = CreditGen(fair).Generate(800, 204);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(train).ok());
  DriftMonitorOptions opts;
  opts.tolerance = 0.08;
  opts.patience = 2;
  FairnessDriftMonitor monitor(opts);
  for (uint64_t b = 0; b < 8; ++b) {
    BiasConfig drifting;
    drifting.score_shift = 0.25 * static_cast<double>(b);
    drifting.qualification_gap = 0.25 * static_cast<double>(b);
    monitor.ObserveBatch(model,
                         CreditGen(drifting).Generate(500, 400 + b));
  }
  EXPECT_TRUE(monitor.alarm());
  EXPECT_GT(monitor.TrendSlope(), 0.01)
      << "gap should trend upward across batches";
  EXPECT_EQ(monitor.num_batches(), 8u);
}

TEST(Drift, TrendSlopeMatchesLinearSeries) {
  FairnessDriftMonitor monitor;
  // Feed a synthetic linear gap series through a stub: use ObserveBatch
  // indirectly by constructing datasets is overkill here; instead verify
  // the slope arithmetic via a crafted monitor history using batches with
  // controlled gaps. A constant model + controlled group labels gives an
  // exact gap.
  Schema schema({FeatureSpec{"decision", FeatureKind::kBinary}}, -1);
  LogisticRegression lookup;
  lookup.SetParameters({100.0}, -50.0);  // predicts x0 >= 0.5.
  for (int b = 0; b < 4; ++b) {
    // Gap = b * 0.2: G- all favorable; G+ favorable rate 1 - 0.2 b.
    std::vector<Vector> rows;
    std::vector<int> labels, groups;
    for (int i = 0; i < 10; ++i) {
      rows.push_back({1.0});
      labels.push_back(1);
      groups.push_back(0);
    }
    for (int i = 0; i < 10; ++i) {
      rows.push_back({i < 10 - 2 * b ? 1.0 : 0.0});
      labels.push_back(1);
      groups.push_back(1);
    }
    Dataset batch(schema, Matrix::FromRows(rows), labels, groups);
    monitor.ObserveBatch(lookup, batch);
  }
  EXPECT_NEAR(monitor.TrendSlope(), 0.2, 1e-9);
}

// --- combined tradeoff score ---

TEST(Tradeoff, ScoresAreInUnitInterval) {
  auto f = Fixture::Make();
  auto score = EvaluateTradeoff(f.model, f.data);
  EXPECT_GT(score.utility, 0.5);
  EXPECT_LE(score.utility, 1.0);
  EXPECT_GE(score.fairness, 0.0);
  EXPECT_LE(score.fairness, 1.0);
  EXPECT_GT(score.explainability, 0.5);
  EXPECT_GT(score.combined, 0.0);
  EXPECT_LE(score.combined, 1.0);
}

TEST(Tradeoff, FairModelScoresHigherOnFairnessAxis) {
  auto f = Fixture::Make();
  FairTrainingOptions opts;
  opts.lambda = 10.0;
  auto fair_model = TrainFairLogisticRegression(f.data, opts);
  ASSERT_TRUE(fair_model.ok());
  auto base = EvaluateTradeoff(f.model, f.data);
  auto fair = EvaluateTradeoff(*fair_model, f.data);
  EXPECT_GT(fair.fairness, base.fairness);
}

TEST(Tradeoff, WeightsSteerTheAggregate) {
  auto f = Fixture::Make();
  TradeoffWeights fairness_only{0.0, 1.0, 0.0};
  TradeoffWeights utility_only{1.0, 0.0, 0.0};
  auto fscore = EvaluateTradeoff(f.model, f.data, fairness_only);
  auto uscore = EvaluateTradeoff(f.model, f.data, utility_only);
  EXPECT_NEAR(fscore.combined, fscore.fairness, 1e-9);
  EXPECT_NEAR(uscore.combined, uscore.utility, 1e-9);
}

// --- multiclass ---

TEST(Multiclass, LearnsThreeTiers) {
  auto data = GenerateMulticlassCredit(1200, 0.0, 205);
  SoftmaxRegression model;
  ASSERT_TRUE(model.Fit(data.x, data.labels, 3).ok());
  EXPECT_GT(MulticlassAccuracy(model, data.x, data.labels), 0.6);
  // Probabilities are a distribution.
  Vector probs = model.PredictProba(data.x.Row(0));
  double sum = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Multiclass, ParityGapTracksPlantedShift) {
  auto fair = GenerateMulticlassCredit(3000, 0.0, 206);
  auto biased = GenerateMulticlassCredit(3000, 1.2, 206);
  SoftmaxRegression fair_model, biased_model;
  ASSERT_TRUE(fair_model.Fit(fair.x, fair.labels, 3).ok());
  ASSERT_TRUE(biased_model.Fit(biased.x, biased.labels, 3).ok());
  const double fair_gap =
      MulticlassParityGap(fair_model, fair.x, fair.groups);
  const double biased_gap =
      MulticlassParityGap(biased_model, biased.x, biased.groups);
  EXPECT_LT(fair_gap, 0.12);
  EXPECT_GT(biased_gap, fair_gap + 0.1);
}

TEST(Multiclass, ParityProfileShowsWhichTierDrives) {
  auto data = GenerateMulticlassCredit(3000, 1.2, 207);
  SoftmaxRegression model;
  ASSERT_TRUE(model.Fit(data.x, data.labels, 3).ok());
  Vector profile = MulticlassParityProfile(model, data.x, data.groups);
  ASSERT_EQ(profile.size(), 3u);
  // G+ is over-represented in "deny" (profile[0] < 0: G- gets it less)
  // and under-represented in "approve" (profile[2] > 0).
  EXPECT_LT(profile[0], 0.0);
  EXPECT_GT(profile[2], 0.0);
  // Profile entries sum to ~0 (both are distributions over classes).
  EXPECT_NEAR(profile[0] + profile[1] + profile[2], 0.0, 1e-9);
}

TEST(Multiclass, FitRejectsBadInput) {
  SoftmaxRegression model;
  Matrix x(5, 2);
  EXPECT_FALSE(model.Fit(x, {0, 1, 2, 0, 9}, 3).ok());   // Out of range.
  EXPECT_FALSE(model.Fit(x, {0, 1}, 3).ok());            // Size mismatch.
  EXPECT_FALSE(model.Fit(x, {0, 0, 0, 0, 0}, 1).ok());   // One class.
  EXPECT_FALSE(model.Fit(Matrix(0, 2), {}, 3).ok());     // Empty.
}

}  // namespace
}  // namespace xfair
