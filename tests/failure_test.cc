// Failure injection and degenerate-input behavior: the library must fail
// loudly (Status) or degrade gracefully (defined values) on empty groups,
// constant features, one-class data, trivial models, and exhausted
// searches — never crash or return garbage.

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generators.h"
#include "src/data/scaler.h"
#include "src/explain/counterfactual.h"
#include "src/fairness/group_metrics.h"
#include "src/fairness/individual_metrics.h"
#include "src/mitigate/postprocess.h"
#include "src/mitigate/preprocess.h"
#include "src/model/decision_tree.h"
#include "src/model/logistic_regression.h"
#include "src/model/metrics.h"
#include "src/unfair/ares.h"
#include "src/unfair/burden.h"
#include "src/unfair/cet.h"
#include "src/unfair/facts.h"
#include "src/unfair/globece.h"

namespace xfair {
namespace {

/// Model that always predicts the favorable class.
class AlwaysYes final : public Model {
 public:
  double PredictProba(const Vector&) const override { return 0.99; }
  std::string name() const override { return "yes"; }
};

/// Model that never predicts the favorable class.
class AlwaysNo final : public Model {
 public:
  double PredictProba(const Vector&) const override { return 0.01; }
  std::string name() const override { return "no"; }
};

Dataset SingleGroupData(int group, size_t n = 60) {
  Dataset d = CreditGen().Generate(n * 3, 401);
  return d.Subset(d.GroupIndices(group));
}

TEST(Degenerate, MetricsWithEmptyGroupAreDefined) {
  Dataset d = SingleGroupData(1);
  AlwaysYes model;
  // Positive rate of the empty group reads as 0; values stay finite.
  EXPECT_TRUE(std::isfinite(StatisticalParityDifference(model, d)));
  EXPECT_TRUE(std::isfinite(DisparateImpactRatio(model, d)));
  GroupFairnessReport r = EvaluateGroupFairness(model, d);
  EXPECT_EQ(r.non_protected_group.total(), 0u);
  EXPECT_TRUE(std::isfinite(r.statistical_parity_difference));
}

TEST(Degenerate, AlwaysYesModelHasNoNegativesToExplain) {
  Dataset d = CreditGen().Generate(200, 402);
  AlwaysYes model;
  Rng rng(403);
  auto burden =
      ComputeBurden(model, d, BurdenScope::kAllNegatives, {}, &rng);
  EXPECT_EQ(burden.counterfactuals_protected, 0u);
  EXPECT_EQ(burden.counterfactuals_non_protected, 0u);
  EXPECT_DOUBLE_EQ(burden.burden_gap, 0.0);

  auto facts = RunFacts(model, d, {});
  EXPECT_TRUE(facts.ranked_subgroups.empty());
  EXPECT_EQ(facts.subgroups_examined, 0u);

  auto ares = BuildRecourseSet(model, d, {});
  EXPECT_EQ(ares.num_rules, 0u);
  EXPECT_DOUBLE_EQ(ares.total_recourse_rate, 0.0);

  auto cet = BuildCounterfactualTree(model, d, {});
  EXPECT_EQ(cet.num_leaves, 1u);  // Trivial empty tree.
}

TEST(Degenerate, AlwaysNoModelExhaustsCfSearchGracefully) {
  Dataset d = CreditGen().Generate(50, 404);
  AlwaysNo model;
  Rng rng(405);
  CounterfactualConfig cfg;
  cfg.max_iterations = 10;  // Keep the doomed search cheap.
  auto r = GrowingSpheresCounterfactual(model, d.schema(), d.instance(0),
                                        cfg, &rng);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.counterfactual, d.instance(0));
  // GLOBE-CE degrades to zero coverage rather than failing.
  GlobeCeOptions opts;
  opts.cf_config.max_iterations = 10;
  opts.direction_sample = 5;
  auto globe = FitGlobeCe(model, d, opts, &rng);
  EXPECT_DOUBLE_EQ(globe.protected_group.coverage, 0.0);
  EXPECT_DOUBLE_EQ(globe.protected_group.mean_cost, 0.0);
}

TEST(Degenerate, ConstantFeatureSurvivesTraining) {
  // Replace a column with a constant; scaler and trainers must cope.
  Dataset d = CreditGen().Generate(150, 406);
  Matrix x = d.x();
  for (size_t i = 0; i < x.rows(); ++i) x.At(i, 2) = 5.0;
  Dataset constant(d.schema(), std::move(x), d.labels(), d.groups());

  StandardScaler scaler;
  scaler.Fit(constant);
  Dataset scaled = scaler.Transform(constant);
  for (size_t i = 0; i < 10; ++i)
    EXPECT_TRUE(std::isfinite(scaled.x().At(i, 2)));

  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(constant).ok());
  EXPECT_TRUE(std::isfinite(lr.PredictProba(constant.instance(0))));

  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(constant).ok());
  EXPECT_TRUE(tree.fitted());
}

TEST(Degenerate, OneClassLabelsAreHandled) {
  Dataset d = CreditGen().Generate(120, 407);
  std::vector<int> ones(d.size(), 1);
  Dataset all_pos(d.schema(), d.x(), ones, d.groups());
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(all_pos).ok());
  // Model should learn to predict the only class it has seen.
  EXPECT_GT(Accuracy(lr, all_pos), 0.95);
  EXPECT_NEAR(Auc(lr, all_pos), 0.5, 1e-12);  // Defined fallback.
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(all_pos).ok());
  EXPECT_EQ(tree.nodes().size(), 1u);  // Pure root: no split.
}

TEST(Degenerate, MassagingWithNoCandidatesIsNoOp) {
  // All protected instances already positive, all non-protected negative:
  // no promotion/demotion pairs exist.
  std::vector<Vector> rows;
  std::vector<int> labels, groups;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({static_cast<double>(i)});
    labels.push_back(i % 2);
    groups.push_back(i % 2);  // group == label: promote set empty.
  }
  Schema schema({FeatureSpec{"v"}}, -1);
  Dataset d(schema, Matrix::FromRows(rows), labels, groups);
  AlwaysYes ranker;
  Dataset massaged = MassageLabels(d, ranker, 10);
  EXPECT_EQ(massaged.labels(), d.labels());
}

TEST(Degenerate, ThresholdSearchWithExtremeScores) {
  // Scores saturated at 0.99 / 0.01: the grid must still return a valid
  // wrapper (decisions may be all-or-nothing per group).
  Dataset d = CreditGen().Generate(300, 408);
  AlwaysYes model;
  auto wrapped = FitGroupThresholds(model, d, {});
  ASSERT_TRUE(wrapped.ok());
  EXPECT_GT(wrapped->threshold_protected(), 0.0);
  EXPECT_LT(wrapped->threshold_protected(), 1.0);
}

TEST(Degenerate, LipschitzOnTinyData) {
  Dataset d = CreditGen().Generate(2, 409);
  LogisticRegression lr;
  lr.SetParameters(Vector(d.num_features(), 0.0), 0.0);
  Rng rng(410);
  EXPECT_DOUBLE_EQ(LipschitzViolationRate(lr, d, 1.0, 10, &rng), 0.0);
  Dataset one = d.Subset({0});
  EXPECT_DOUBLE_EQ(LipschitzViolationRate(lr, one, 1.0, 10, &rng), 0.0);
}

TEST(Degenerate, KnnConsistencyWithFewerPointsThanK) {
  Dataset d = CreditGen().Generate(4, 411);
  LogisticRegression lr;
  lr.SetParameters(Vector(d.num_features(), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(KnnConsistency(lr, d, 10), 1.0);
}

TEST(Degenerate, SubsetOfNothing) {
  Dataset d = CreditGen().Generate(10, 412);
  Dataset empty = d.Subset({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_DOUBLE_EQ(empty.BaseRate(1), 0.0);
  EXPECT_TRUE(empty.GroupIndices(0).empty());
}

TEST(Degenerate, WachterOnZeroGradientModel) {
  Dataset d = CreditGen().Generate(50, 413);
  LogisticRegression flat;
  flat.SetParameters(Vector(d.num_features(), 0.0), -1.0);  // Always no.
  auto r = WachterCounterfactual(flat, d.schema(), d.instance(0), {});
  EXPECT_FALSE(r.valid);  // Flat gradient: search reports failure.
}

}  // namespace
}  // namespace xfair
