// Tests for FA*IR-style probability-based fair top-k (src/beyond/
// fair_topk): m-table correctness, constraint satisfaction, minimality of
// intervention, and the link back to FairPrefixPValue.

#include <gtest/gtest.h>

#include <numeric>

#include "src/beyond/fair_topk.h"
#include "src/fairness/ranking_metrics.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace xfair {
namespace {

TEST(FairPrefixTargets, MonotoneAndBounded) {
  const auto targets = FairPrefixTargets(30, 0.4, 0.1);
  ASSERT_EQ(targets.size(), 30u);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_LE(targets[i], i + 1);
    if (i > 0) {
      EXPECT_GE(targets[i], targets[i - 1]);
    }
  }
  // Roughly tracks p * prefix minus slack.
  EXPECT_GT(targets.back(), 5u);
  EXPECT_LT(targets.back(), 13u);
}

TEST(FairPrefixTargets, ZeroWhenProportionZero) {
  for (size_t t : FairPrefixTargets(10, 0.0, 0.1)) EXPECT_EQ(t, 0u);
}

TEST(FairPrefixTargets, TargetIsStatisticallyJustified) {
  // The target m is the smallest count with P(X <= m) > alpha: observing
  // m - 1 or fewer protected items must be alpha-surprising, and m itself
  // must not be.
  const double p = 0.5, alpha = 0.1;
  const auto targets = FairPrefixTargets(20, p, alpha);
  for (size_t prefix = 1; prefix <= 20; ++prefix) {
    const size_t m = targets[prefix - 1];
    // P(X <= m) = 1 - P(X >= m + 1) must exceed alpha.
    const double at_m = 1.0 - BinomialTailProb(prefix, m + 1, p);
    EXPECT_GT(at_m, alpha - 1e-9) << "prefix " << prefix;
    if (m > 0) {
      // P(X <= m - 1) must be <= alpha (otherwise m is not minimal).
      const double below = 1.0 - BinomialTailProb(prefix, m, p);
      EXPECT_LE(below, alpha + 1e-9) << "prefix " << prefix;
    }
  }
}

TEST(FairTopK, SatisfiesConstraintOnBiasedScores) {
  // Protected items systematically scored lower: the plain top-k would
  // exclude them; the fair top-k must hit every prefix target.
  Rng rng(1);
  const size_t n = 60;
  std::vector<double> scores(n);
  std::vector<int> flags(n);
  for (size_t i = 0; i < n; ++i) {
    flags[i] = i % 2;  // Half protected.
    scores[i] = rng.Uniform(0, 1) - 0.4 * flags[i];
  }
  auto result = BuildFairTopK(scores, flags, 20, 0.5, 0.1);
  EXPECT_TRUE(result.feasible);
  ASSERT_EQ(result.ranking.size(), 20u);
  const auto targets = FairPrefixTargets(20, 0.5, 0.1);
  size_t seen = 0;
  for (size_t r = 0; r < 20; ++r) {
    seen += static_cast<size_t>(flags[result.ranking[r]] == 1);
    EXPECT_GE(seen, targets[r]) << "prefix " << r + 1;
  }
  EXPECT_GT(result.swaps, 0u) << "biased scores require interventions";
  // The constructed ranking passes the probability-based fairness test
  // it was built from.
  EXPECT_GT(*FairPrefixPValue(result.ranking, flags), 0.05);
}

TEST(FairTopK, NoSwapsWhenScoresAlreadyFair) {
  // Scores independent of group: plain merge should rarely need
  // promotions, and the result is score-sorted.
  Rng rng(2);
  const size_t n = 40;
  std::vector<double> scores(n);
  std::vector<int> flags(n);
  for (size_t i = 0; i < n; ++i) {
    flags[i] = rng.Bernoulli(0.5) ? 1 : 0;
    scores[i] = rng.Uniform(0, 1);
  }
  auto fair = BuildFairTopK(scores, flags, 10, 0.5, 0.1);
  EXPECT_TRUE(fair.feasible);
  // Compare against the unconstrained top-k.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  size_t agreements = 0;
  for (size_t r = 0; r < 10; ++r) {
    agreements += static_cast<size_t>(fair.ranking[r] == order[r]);
  }
  EXPECT_GE(agreements, 8u)
      << "fair top-k should barely differ when scores are unbiased";
}

TEST(FairTopK, InfeasibleWhenSupplyExhausted) {
  // Only one protected item but targets demand several.
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2};
  std::vector<int> flags = {0, 0, 0, 1, 0, 0, 0, 0};
  auto result = BuildFairTopK(scores, flags, 8, 0.5, 0.1);
  EXPECT_FALSE(result.feasible);
  // Still returns a complete ranking with the protected item promoted as
  // far as the table demanded.
  EXPECT_EQ(result.ranking.size(), 8u);
}

TEST(FairTopK, DegenerateInputs) {
  auto empty = BuildFairTopK({}, {}, 5, 0.5, 0.1);
  EXPECT_TRUE(empty.feasible);
  EXPECT_TRUE(empty.ranking.empty());
  auto zero_k = BuildFairTopK({1.0}, {1}, 0, 0.5, 0.1);
  EXPECT_TRUE(zero_k.feasible);
  EXPECT_TRUE(zero_k.ranking.empty());
}

}  // namespace
}  // namespace xfair
