// Tests for src/fairness: group metrics against hand-computable fixtures,
// individual-fairness metrics, counterfactual fairness, ranking metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/causal/worlds.h"
#include "src/data/generators.h"
#include "src/fairness/group_metrics.h"
#include "src/fairness/individual_metrics.h"
#include "src/fairness/ranking_metrics.h"
#include "src/model/logistic_regression.h"

namespace xfair {
namespace {

/// A fixed "model" that predicts from a lookup of the first feature value,
/// letting us construct exact confusion tables.
class LookupModel final : public Model {
 public:
  double PredictProba(const Vector& x) const override {
    return x[0] >= 0.5 ? 0.9 : 0.1;
  }
  std::string name() const override { return "lookup"; }
};

/// Builds a dataset where feature 0 *is* the model's decision, so group
/// rates are exactly controlled: `pos1` of group-1 rows decided favorably
/// out of n1, similarly for group 0.
Dataset ControlledData(size_t n1, size_t pos1, size_t n0, size_t pos0) {
  std::vector<Vector> rows;
  std::vector<int> labels, groups;
  for (size_t i = 0; i < n1; ++i) {
    rows.push_back({i < pos1 ? 1.0 : 0.0});
    labels.push_back(1);  // Everyone truly deserves the favorable label.
    groups.push_back(1);
  }
  for (size_t i = 0; i < n0; ++i) {
    rows.push_back({i < pos0 ? 1.0 : 0.0});
    labels.push_back(1);
    groups.push_back(0);
  }
  Schema schema({FeatureSpec{"decision", FeatureKind::kBinary}}, -1);
  return Dataset(schema, Matrix::FromRows(rows), labels, groups);
}

TEST(GroupMetrics, StatisticalParityExactValue) {
  // Group1: 2/10 favorable; group0: 6/10.
  Dataset d = ControlledData(10, 2, 10, 6);
  LookupModel m;
  EXPECT_NEAR(StatisticalParityDifference(m, d), 0.4, 1e-12);
  EXPECT_NEAR(DisparateImpactRatio(m, d), 2.0 / 6.0, 1e-12);
}

TEST(GroupMetrics, ParityZeroWhenEqual) {
  Dataset d = ControlledData(10, 5, 10, 5);
  LookupModel m;
  EXPECT_NEAR(StatisticalParityDifference(m, d), 0.0, 1e-12);
  EXPECT_NEAR(DisparateImpactRatio(m, d), 1.0, 1e-12);
}

TEST(GroupMetrics, EqualOpportunityUsesTruePositivesOnly) {
  // All labels are 1, so TPR == positive rate here.
  Dataset d = ControlledData(8, 2, 8, 6);
  LookupModel m;
  EXPECT_NEAR(EqualOpportunityDifference(m, d), 0.5, 1e-12);
  EXPECT_NEAR(EqualizedOddsDifference(m, d), 0.5, 1e-12);
}

TEST(GroupMetrics, ReportIsConsistentWithIndividualMetrics) {
  CreditGen gen;
  Dataset d = gen.Generate(1500, 21);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  GroupFairnessReport r = EvaluateGroupFairness(lr, d);
  EXPECT_NEAR(r.statistical_parity_difference,
              StatisticalParityDifference(lr, d), 1e-12);
  EXPECT_NEAR(r.equal_opportunity_difference,
              EqualOpportunityDifference(lr, d), 1e-12);
  EXPECT_NEAR(r.equalized_odds_difference, EqualizedOddsDifference(lr, d),
              1e-12);
  EXPECT_NEAR(r.predictive_parity_difference,
              PredictiveParityDifference(lr, d), 1e-12);
  EXPECT_NEAR(r.calibration_gap, CalibrationGap(lr, d), 1e-12);
  EXPECT_NEAR(r.accuracy, Accuracy(lr, d), 1e-12);
  EXPECT_EQ(r.protected_group.total(), d.GroupIndices(1).size());
  EXPECT_FALSE(r.ToString().empty());
}

TEST(GroupMetrics, BiasedGeneratorYieldsPositiveParityGap) {
  BiasConfig biased;
  biased.score_shift = 1.0;
  CreditGen gen(biased);
  Dataset d = gen.Generate(3000, 22);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  // The model trained on planted-bias data disadvantages G+.
  EXPECT_GT(StatisticalParityDifference(lr, d), 0.15);
  EXPECT_LT(DisparateImpactRatio(lr, d), 0.8);  // Fails the 80% rule.
}

TEST(IndividualMetrics, LipschitzZeroForConstantModel) {
  Dataset d = CreditGen().Generate(200, 23);
  LogisticRegression flat;
  flat.SetParameters(Vector(d.num_features(), 0.0), 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(LipschitzViolationRate(flat, d, 0.01, 500, &rng), 0.0);
}

TEST(IndividualMetrics, LipschitzDetectsSteepModel) {
  Dataset d = CreditGen().Generate(200, 24);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  Rng rng(2);
  // With an absurdly small Lipschitz constant almost any non-constant
  // model violates.
  EXPECT_GT(LipschitzViolationRate(lr, d, 1e-6, 500, &rng), 0.1);
}

TEST(IndividualMetrics, KnnConsistencyHighForSmoothModel) {
  Dataset d = CreditGen().Generate(400, 25);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  EXPECT_GT(KnnConsistency(lr, d, 5), 0.6);
}

TEST(IndividualMetrics, CounterfactualFairnessGapDetectsDirectUse) {
  CausalWorld world = MakeCreditWorld(1.0);
  // A model that directly uses S is counterfactually unfair.
  LogisticRegression direct;
  direct.SetParameters({5.0, 0.0, 0.0, 0.0, 0.0}, -2.5);
  const double gap_direct = CounterfactualFairnessGap(direct, world, 500, 3);
  // A model using only zip_risk (proxy) is *also* unfair because zip
  // responds to the S intervention.
  LogisticRegression proxy;
  proxy.SetParameters({0.0, 0.0, 0.0, 0.0, 1.5}, -6.0);
  const double gap_proxy = CounterfactualFairnessGap(proxy, world, 500, 3);
  // A model using only exogenous noise-free-of-S features would be fair;
  // here debt depends on income which depends on S, so use a constant.
  LogisticRegression constant;
  constant.SetParameters({0.0, 0.0, 0.0, 0.0, 0.0}, 0.3);
  const double gap_const = CounterfactualFairnessGap(constant, world, 500, 3);
  EXPECT_GT(gap_direct, 0.5);
  EXPECT_GT(gap_proxy, 0.1);
  EXPECT_NEAR(gap_const, 0.0, 1e-12);
}

TEST(RankingMetrics, PositionBiasDecreases) {
  EXPECT_DOUBLE_EQ(PositionBias(0), 1.0);
  EXPECT_GT(PositionBias(1), PositionBias(2));
  EXPECT_GT(PositionBias(5), PositionBias(50));
}

TEST(RankingMetrics, ExposureShareAllOneGroup) {
  std::vector<size_t> ranking = {0, 1, 2};
  std::vector<int> groups = {1, 1, 1};
  EXPECT_DOUBLE_EQ(*ExposureShare(ranking, groups), 1.0);
  std::vector<int> none = {0, 0, 0};
  EXPECT_DOUBLE_EQ(*ExposureShare(ranking, none), 0.0);
}

TEST(RankingMetrics, ExposureGapNegativeWhenProtectedAtBottom) {
  // 6 items, protected items ranked last.
  std::vector<size_t> ranking = {0, 1, 2, 3, 4, 5};
  std::vector<int> groups = {0, 0, 0, 1, 1, 1};
  EXPECT_LT(*ExposureGap(ranking, groups), -0.05);
  // Alternating ranking is nearly proportional.
  std::vector<size_t> alt = {3, 0, 4, 1, 5, 2};
  EXPECT_NEAR(*ExposureGap(alt, groups), 0.0, 0.12);
}

TEST(RankingMetrics, FairPrefixPValueFlagsBottomStacking) {
  std::vector<int> groups(20);
  for (int i = 0; i < 20; ++i) groups[i] = i >= 10 ? 1 : 0;
  // Protected items occupy exactly the bottom half.
  std::vector<size_t> bad(20);
  std::iota(bad.begin(), bad.end(), 0);
  const double p_bad = *FairPrefixPValue(bad, groups);
  // Perfectly interleaved ranking.
  std::vector<size_t> good;
  for (int i = 0; i < 10; ++i) {
    good.push_back(static_cast<size_t>(10 + i));
    good.push_back(static_cast<size_t>(i));
  }
  const double p_good = *FairPrefixPValue(good, groups);
  EXPECT_LT(p_bad, 0.01);
  EXPECT_GT(p_good, 0.2);
}

TEST(RankingMetrics, FairPrefixPValueDegenerateCases) {
  EXPECT_DOUBLE_EQ(*FairPrefixPValue({}, {}), 1.0);
  std::vector<int> all_one = {1, 1};
  EXPECT_DOUBLE_EQ(*FairPrefixPValue({0, 1}, all_one), 1.0);
}

TEST(RankingMetrics, EmptyRankingSentinels) {
  const std::vector<size_t> empty;
  const std::vector<int> groups = {0, 1};
  EXPECT_DOUBLE_EQ(*ExposureShare(empty, groups), 0.0);
  EXPECT_DOUBLE_EQ(*ExposureGap(empty, groups), 0.0);
  EXPECT_DOUBLE_EQ(*FairPrefixPValue(empty, groups), 1.0);
}

TEST(RankingMetrics, OutOfRangeItemIsInvalidArgument) {
  // An external ranking referencing an item the group table doesn't know
  // used to abort the process via XFAIR_CHECK; it must surface as a
  // Status naming the offending rank instead.
  const std::vector<size_t> ranking = {0, 5, 1};
  const std::vector<int> groups = {0, 1};
  for (const auto& r :
       {ExposureShare(ranking, groups), ExposureGap(ranking, groups),
        FairPrefixPValue(ranking, groups)}) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("rank 1"), std::string::npos)
        << r.status().message();
  }
}

TEST(GroupMetrics, SingleGroupDatasetUsesFairSentinels) {
  // Every row is group 0 with a 60% favorable rate. There is no second
  // group to compare against, so each metric reports its "fair" value
  // instead of comparing against an absent group's vacuous zero rate.
  Dataset d = ControlledData(0, 0, 10, 6);
  LookupModel m;
  EXPECT_DOUBLE_EQ(StatisticalParityDifference(m, d), 0.0);
  EXPECT_DOUBLE_EQ(DisparateImpactRatio(m, d), 1.0);
  EXPECT_DOUBLE_EQ(EqualOpportunityDifference(m, d), 0.0);
  EXPECT_DOUBLE_EQ(EqualizedOddsDifference(m, d), 0.0);
  EXPECT_DOUBLE_EQ(PredictiveParityDifference(m, d), 0.0);
  EXPECT_DOUBLE_EQ(CalibrationGap(m, d), 0.0);

  const GroupFairnessReport report = EvaluateGroupFairness(m, d);
  EXPECT_DOUBLE_EQ(report.statistical_parity_difference, 0.0);
  EXPECT_DOUBLE_EQ(report.disparate_impact_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.equalized_odds_difference, 0.0);
  EXPECT_NEAR(report.accuracy, 0.6, 1e-12);
}

}  // namespace
}  // namespace xfair
