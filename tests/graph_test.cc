// Tests for src/graph (graph ops, propagation, SBM, SGC) and the graph
// explainers in src/beyond (structural bias edge sets, node influence).

#include <gtest/gtest.h>

#include <cmath>

#include "src/beyond/node_influence.h"
#include "src/beyond/structural_bias.h"
#include "src/graph/sbm.h"
#include "src/graph/sgc.h"

namespace xfair {
namespace {

TEST(Graph, EdgeOperations) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 1);  // Idempotent.
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Degree(1), 2u);
  g.RemoveEdge(0, 1);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  g.RemoveEdge(0, 3);  // Absent edge: no-op.
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, PropagationPreservesConstantVector) {
  // The symmetric-normalized operator with self-loops has (sqrt(d+1))_u
  // as an eigenvector; for a regular graph a constant feature stays
  // constant.
  Graph g(4);
  // 4-cycle: every node has degree 2.
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  Matrix features(4, 1, 1.0);
  Matrix h = PropagateFeatures(g, features, 3);
  for (size_t u = 0; u < 4; ++u) EXPECT_NEAR(h.At(u, 0), 1.0, 1e-12);
}

TEST(Graph, PropagationMixesNeighborhoods) {
  Graph g(3);
  g.AddEdge(0, 1);
  Matrix features(3, 1);
  features.At(0, 0) = 1.0;
  Matrix h = PropagateFeatures(g, features, 1);
  EXPECT_GT(h.At(1, 0), 0.0);          // Neighbor received mass.
  EXPECT_DOUBLE_EQ(h.At(2, 0), 0.0);   // Isolated node did not.
}

TEST(Sbm, HomophilyControlsMixing) {
  SbmConfig homophilous;
  homophilous.p_intra = 0.15;
  homophilous.p_inter = 0.01;
  GraphData biased = GenerateSbm(homophilous, 1);
  SbmConfig mixed = homophilous;
  mixed.p_inter = 0.15;
  GraphData unbiased = GenerateSbm(mixed, 1);

  auto cross_fraction = [](const GraphData& d) {
    size_t cross = 0;
    for (const auto& [u, v] : d.graph.Edges())
      cross += static_cast<size_t>(d.groups[u] != d.groups[v]);
    return static_cast<double>(cross) /
           static_cast<double>(std::max<size_t>(1, d.graph.num_edges()));
  };
  EXPECT_LT(cross_fraction(biased), 0.2);
  EXPECT_GT(cross_fraction(unbiased), 0.35);
}

TEST(Sbm, LabelShiftCreatesGroupGap) {
  SbmConfig cfg;
  cfg.num_nodes = 2000;
  cfg.label_shift = 1.0;
  GraphData d = GenerateSbm(cfg, 2);
  double rate[2] = {0, 0};
  size_t count[2] = {0, 0};
  for (size_t u = 0; u < d.labels.size(); ++u) {
    rate[d.groups[u]] += d.labels[u];
    ++count[d.groups[u]];
  }
  EXPECT_GT(rate[0] / count[0] - rate[1] / count[1], 0.1);
}

TEST(Sgc, FitsAndPredictsBetterThanChance) {
  SbmConfig cfg;
  cfg.num_nodes = 400;
  GraphData d = GenerateSbm(cfg, 3);
  SgcModel model;
  ASSERT_TRUE(model.Fit(d).ok());
  const auto preds = model.PredictAll();
  size_t correct = 0;
  for (size_t u = 0; u < preds.size(); ++u)
    correct += static_cast<size_t>(preds[u] == d.labels[u]);
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.6);
}

TEST(Sgc, HomophilyAmplifiesParityGap) {
  // With homophily, propagation concentrates group signal: the SGC's
  // parity gap should exceed (or at least match) the no-graph logistic
  // baseline trained on raw features.
  SbmConfig cfg;
  cfg.num_nodes = 600;
  cfg.p_intra = 0.12;
  cfg.p_inter = 0.005;
  cfg.label_shift = 1.0;
  cfg.feature_signal = 0.6;
  GraphData d = GenerateSbm(cfg, 4);
  SgcModel with_graph;
  ASSERT_TRUE(with_graph.Fit(d).ok());
  // Featureless graph: same data, zero hops == plain logistic.
  SgcOptions no_hops;
  no_hops.hops = 0;
  SgcModel without_graph;
  ASSERT_TRUE(without_graph.Fit(d, no_hops).ok());
  const double gap_graph = SgcParityGap(with_graph, d.groups);
  const double gap_plain = SgcParityGap(without_graph, d.groups);
  EXPECT_GT(gap_graph, gap_plain - 0.05)
      << "homophilous propagation should not shrink the gap";
  EXPECT_GT(gap_graph, 0.05);
}

TEST(Sgc, ScoreOnGraphMatchesStoredPropagation) {
  SbmConfig cfg;
  cfg.num_nodes = 150;
  GraphData d = GenerateSbm(cfg, 5);
  SgcModel model;
  ASSERT_TRUE(model.Fit(d).ok());
  const Vector scores = model.ScoreAll();
  for (size_t u = 0; u < 10; ++u) {
    EXPECT_NEAR(model.ScoreOnGraph(d.graph, d.features, u), scores[u],
                1e-9);
  }
}

TEST(StructuralBias, EdgeSetsAreDisjointAndOrdered) {
  SbmConfig cfg;
  cfg.num_nodes = 120;
  cfg.p_intra = 0.15;
  cfg.label_shift = 1.0;
  GraphData d = GenerateSbm(cfg, 6);
  SgcModel model;
  ASSERT_TRUE(model.Fit(d).ok());
  const auto report = ExplainNodeBias(model, d, 0, {});
  // Attributions are sorted ascending by gap change.
  for (size_t k = 1; k < report.attributions.size(); ++k) {
    EXPECT_LE(report.attributions[k - 1].gap_change,
              report.attributions[k].gap_change);
  }
  // Bias and fairness sets do not overlap.
  for (const auto& be : report.bias_edge_set) {
    for (const auto& fe : report.fairness_edge_set) {
      EXPECT_FALSE(be == fe);
    }
  }
}

TEST(StructuralBias, RemovingBiasEdgeSetShrinksGap) {
  SbmConfig cfg;
  cfg.num_nodes = 200;
  cfg.p_intra = 0.12;
  cfg.p_inter = 0.01;
  cfg.label_shift = 1.2;
  GraphData d = GenerateSbm(cfg, 7);
  SgcModel model;
  ASSERT_TRUE(model.Fit(d).ok());
  const double base_gap =
      model.ParityGapOnGraph(d.graph, d.features, d.groups);
  // Pick a node with some neighbors.
  size_t node = 0;
  for (size_t u = 0; u < d.graph.num_nodes(); ++u) {
    if (d.graph.Degree(u) >= 3) {
      node = u;
      break;
    }
  }
  const auto report = ExplainNodeBias(model, d, node, {});
  if (report.bias_edge_set.empty()) {
    GTEST_SKIP() << "no bias-accounting edges near this node";
  }
  Graph pruned = d.graph;
  for (const auto& [u, v] : report.bias_edge_set) pruned.RemoveEdge(u, v);
  const double new_gap =
      model.ParityGapOnGraph(pruned, d.features, d.groups);
  EXPECT_LT(new_gap, base_gap + 1e-9);
}

TEST(NodeInfluence, RankedRemovalReducesGap) {
  SbmConfig cfg;
  cfg.num_nodes = 300;
  cfg.label_shift = 1.2;
  GraphData d = GenerateSbm(cfg, 8);
  SgcModel model;
  ASSERT_TRUE(model.Fit(d).ok());
  auto report = ExplainBiasByNodeInfluence(model);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->influence.size(), d.graph.num_nodes());
  EXPECT_GT(report->top_decile_share, 0.1)
      << "influence should concentrate above uniform (0.1)";
  // The top-ranked node is the most gap-reducing removal.
  const size_t top = report->ranked_nodes.front();
  for (size_t u : report->ranked_nodes) {
    EXPECT_LE(report->influence[top], report->influence[u]);
  }
}

}  // namespace
}  // namespace xfair
