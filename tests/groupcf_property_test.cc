// Property sweeps over the group-counterfactual methods (FACTS, GLOBE-CE,
// CE trees, AReS): structural invariants that must hold for any planted
// bias level and any of the tabular generators.

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generators.h"
#include "src/model/logistic_regression.h"
#include "src/unfair/ares.h"
#include "src/unfair/cet.h"
#include "src/unfair/facts.h"
#include "src/unfair/globece.h"

namespace xfair {
namespace {

struct Combo {
  int generator;  // 0 credit, 1 recidivism, 2 income.
  double shift;
};

Dataset MakeData(const Combo& combo, size_t n, uint64_t seed) {
  BiasConfig cfg;
  cfg.score_shift = combo.shift;
  switch (combo.generator) {
    case 0:
      return CreditGen(cfg).Generate(n, seed);
    case 1:
      return RecidivismGen(cfg).Generate(n, seed);
    default:
      return IncomeGen(cfg).Generate(n, seed);
  }
}

class GroupCfPropertyTest : public ::testing::TestWithParam<Combo> {
 protected:
  void SetUp() override {
    data_ = MakeData(GetParam(), 600, 701);
    XFAIR_CHECK(model_.Fit(data_).ok());
  }
  Dataset data_ = CreditGen().Generate(1, 0);
  LogisticRegression model_;
};

TEST_P(GroupCfPropertyTest, FactsInvariants) {
  auto report = RunFacts(model_, data_, {});
  // Effectiveness values are probabilities; unfairness bounded by 1.
  for (const auto& sg : report.ranked_subgroups) {
    EXPECT_GE(sg.best_effectiveness_protected, 0.0);
    EXPECT_LE(sg.best_effectiveness_protected, 1.0);
    EXPECT_GE(sg.best_effectiveness_non_protected, 0.0);
    EXPECT_LE(sg.best_effectiveness_non_protected, 1.0);
    EXPECT_LE(sg.unfairness, 1.0);
    // Unfairness never exceeds the best non-protected effectiveness (it
    // is a difference of two effectiveness values for one action).
    EXPECT_LE(sg.unfairness,
              sg.best_effectiveness_non_protected + 1e-12);
    // Subgroup conditions never mention the sensitive column itself.
    const int sens = data_.schema().sensitive_index();
    for (const auto& [f, b] : sg.conditions) {
      EXPECT_NE(static_cast<int>(f), sens);
    }
  }
  // Best overall effectiveness bounds any subgroup's unfairness gap
  // direction: gaps reported are about the same candidate action set.
  EXPECT_GE(report.overall_best_effectiveness_non_protected, 0.0);
  EXPECT_LE(report.overall_best_effectiveness_non_protected, 1.0);
}

TEST_P(GroupCfPropertyTest, GlobeCeInvariants) {
  Rng rng(702);
  auto report = FitGlobeCe(model_, data_, {}, &rng);
  for (const auto* group :
       {&report.protected_group, &report.non_protected_group}) {
    // Direction is unit-norm (or zero if no negatives/CFs existed).
    const double norm = Norm2(group->direction);
    EXPECT_TRUE(std::fabs(norm - 1.0) < 1e-9 || norm < 1e-9);
    EXPECT_GE(group->coverage, 0.0);
    EXPECT_LE(group->coverage, 1.0);
    // Scales recorded only for covered members and all positive.
    for (double s : group->min_scales) EXPECT_GT(s, 0.0);
  }
}

TEST_P(GroupCfPropertyTest, CetInvariants) {
  auto report = BuildCounterfactualTree(model_, data_, {});
  ASSERT_FALSE(report.nodes.empty());
  // Tree structure: children indices in range; leaf count consistent.
  size_t leaves = 0;
  for (const auto& n : report.nodes) {
    if (n.feature < 0) {
      ++leaves;
    } else {
      ASSERT_GE(n.left, 0);
      ASSERT_GE(n.right, 0);
      ASSERT_LT(static_cast<size_t>(n.left), report.nodes.size());
      ASSERT_LT(static_cast<size_t>(n.right), report.nodes.size());
    }
    EXPECT_GE(n.effectiveness, 0.0);
    EXPECT_LE(n.effectiveness, 1.0);
  }
  EXPECT_EQ(leaves, report.num_leaves);
  // Routing any instance terminates at a leaf whose action is recorded.
  for (size_t i = 0; i < 20 && i < data_.size(); ++i) {
    const auto& action = report.ActionFor(data_.instance(i));
    for (const auto& a : action.actions) {
      EXPECT_LT(a.feature, data_.num_features());
    }
  }
}

TEST_P(GroupCfPropertyTest, AresInvariants) {
  auto report = BuildRecourseSet(model_, data_, {});
  EXPECT_GE(report.total_recourse_rate, 0.0);
  EXPECT_LE(report.total_recourse_rate, 1.0);
  for (const auto& rule : report.rules) {
    EXPECT_GT(rule.effectiveness, 0.0);
    EXPECT_LE(rule.effectiveness, 1.0);
    EXPECT_GE(rule.mean_cost, 0.0);
    // Subgroup descriptors only use immutable features; the action only
    // touches actionable ones.
    for (const auto& [f, b] : rule.subgroup) {
      EXPECT_EQ(data_.schema().feature(f).actionability,
                Actionability::kImmutable);
    }
    for (const auto& a : rule.action.actions) {
      EXPECT_NE(data_.schema().feature(a.feature).actionability,
                Actionability::kImmutable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeneratorsAndShifts, GroupCfPropertyTest,
    ::testing::Values(Combo{0, 0.4}, Combo{0, 1.2}, Combo{1, 0.8},
                      Combo{2, 0.8}));

TEST(GroupCfMonotonicity, FactsUnfairnessGrowsWithPlantedBias) {
  // The top subgroup's recourse unfairness should grow (weakly) with the
  // planted shift, averaged over seeds to smooth search noise.
  double mild = 0.0, severe = 0.0;
  for (uint64_t seed : {711u, 712u, 713u}) {
    BiasConfig mild_cfg, severe_cfg;
    mild_cfg.score_shift = 0.2;
    severe_cfg.score_shift = 1.4;
    Dataset mild_data = CreditGen(mild_cfg).Generate(700, seed);
    Dataset severe_data = CreditGen(severe_cfg).Generate(700, seed);
    LogisticRegression mild_model, severe_model;
    ASSERT_TRUE(mild_model.Fit(mild_data).ok());
    ASSERT_TRUE(severe_model.Fit(severe_data).ok());
    mild += RunFacts(mild_model, mild_data, {}).overall_effectiveness_gap;
    severe +=
        RunFacts(severe_model, severe_data, {}).overall_effectiveness_gap;
  }
  EXPECT_GT(severe, mild);
}

}  // namespace
}  // namespace xfair
