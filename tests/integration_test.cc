// Integration tests: multi-module pipelines that mirror how a user would
// chain the library — audit -> explain -> mitigate -> re-audit, fitted
// SCMs feeding causal explainers, CSV round-trips into audits, and
// cross-checks between independent implementations of the same quantity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/core/registry.h"
#include "src/data/csv.h"
#include "src/unfair/actions.h"
#include "src/data/generators.h"
#include "src/explain/influence.h"
#include "src/fairness/group_metrics.h"
#include "src/fairness/tradeoff.h"
#include "src/mitigate/inprocess.h"
#include "src/mitigate/postprocess.h"
#include "src/mitigate/preprocess.h"
#include "src/model/gbm.h"
#include "src/unfair/burden.h"
#include "src/unfair/causal_path.h"
#include "src/unfair/facts.h"
#include "src/unfair/fairness_shap.h"
#include "src/unfair/gopher.h"

namespace xfair {
namespace {

TEST(Integration, AuditExplainMitigateReauditLoop) {
  // The canonical workflow of the paper's three directions, end to end.
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  cfg.label_bias = 0.1;
  Dataset all = CreditGen(cfg).Generate(2000, 601);
  Rng rng(602);
  auto [train, test] = all.Split(0.6, &rng);

  // Audit.
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(train).ok());
  const double gap_before =
      std::fabs(StatisticalParityDifference(model, test));
  ASSERT_GT(gap_before, 0.2) << "fixture must start unfair";

  // Explain (E): burden confirms the disparity in effort space.
  auto burden =
      ComputeBurden(model, test, BurdenScope::kAllNegatives, {}, &rng);
  EXPECT_GT(burden.burden_gap, 0.0);

  // Explain (U): Shapley names the features; Gopher names the data.
  auto shap = ExplainParityWithShapley(model, test, {});
  EXPECT_GT(shap.contributions[shap.ranked_features[0]], 0.05);
  auto gopher = ExplainUnfairnessByPatterns(model, train, {});
  ASSERT_TRUE(gopher.ok());
  ASSERT_FALSE(gopher->patterns.empty());

  // Mitigate (M): act on the diagnosis with all three stages; each must
  // beat the audited baseline on held-out data.
  LogisticRegression reweighed;
  ASSERT_TRUE(reweighed.Fit(train, {}, ReweighingWeights(train)).ok());
  EXPECT_LT(std::fabs(StatisticalParityDifference(reweighed, test)),
            gap_before);

  FairTrainingOptions fair_opts;
  fair_opts.lambda = 10.0;
  auto fair = TrainFairLogisticRegression(train, fair_opts);
  ASSERT_TRUE(fair.ok());
  EXPECT_LT(std::fabs(StatisticalParityDifference(*fair, test)),
            gap_before);

  auto thresholds = FitGroupThresholds(model, train, {});
  ASSERT_TRUE(thresholds.ok());
  EXPECT_LT(std::fabs(StatisticalParityDifference(*thresholds, test)),
            gap_before);

  // Re-audit on the combined tradeoff: mitigation should not destroy the
  // aggregate score.
  const double combined_before = EvaluateTradeoff(model, test).combined;
  const double combined_after = EvaluateTradeoff(*fair, test).combined;
  EXPECT_GT(combined_after, combined_before - 0.05);
}

TEST(Integration, FittedScmMatchesGroundTruthDecomposition) {
  // Fit an SCM from generated data (structure known, parameters not) and
  // verify the causal-path decomposition through the *fitted* SCM agrees
  // with the ground-truth one.
  CausalWorld truth = MakeCreditWorld(1.0);
  Dataset data = truth.GenerateDataset(4000, 603);
  CausalWorld fitted = MakeCreditWorld(1.0);  // Same graph...
  ASSERT_TRUE(fitted.scm.FitFromData(data.x()).ok());  // ...new params.
  // Fitted edge weights recover the generating mechanism.
  auto income = truth.scm.dag().IndexOf("income");
  auto savings = truth.scm.dag().IndexOf("savings");
  ASSERT_TRUE(income.ok() && savings.ok());
  EXPECT_NEAR(fitted.scm.EdgeWeight(truth.sensitive, *income), -1.0, 0.1);
  EXPECT_NEAR(fitted.scm.EdgeWeight(*income, *savings), 0.8, 0.05);

  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  auto via_truth = DecomposeDisparityByPaths(model, truth, 3000, 604);
  auto via_fit = DecomposeDisparityByPaths(model, fitted, 3000, 604);
  ASSERT_EQ(via_truth.paths.size(), via_fit.paths.size());
  EXPECT_NEAR(via_fit.total_disparity, via_truth.total_disparity, 0.05);
  // Top path agrees between fitted and ground-truth worlds.
  EXPECT_EQ(via_fit.paths[0].description, via_truth.paths[0].description);
}

TEST(Integration, CsvRoundTripPreservesAuditResults) {
  // Export -> infer schema -> reimport -> retrain must reproduce the
  // original audit (same data, same deterministic trainer).
  BiasConfig cfg;
  cfg.score_shift = 0.9;
  Dataset original = CreditGen(cfg).Generate(800, 605);
  LogisticRegression model_a;
  ASSERT_TRUE(model_a.Fit(original).ok());

  const std::string path = "/tmp/xfair_integration.csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto schema = InferSchemaFromCsv(path);
  ASSERT_TRUE(schema.ok());
  auto reloaded = ReadCsv(*schema, path);
  ASSERT_TRUE(reloaded.ok());
  LogisticRegression model_b;
  ASSERT_TRUE(model_b.Fit(*reloaded).ok());

  EXPECT_NEAR(StatisticalParityDifference(model_a, original),
              StatisticalParityDifference(model_b, *reloaded), 0.02);
  EXPECT_NEAR(Accuracy(model_a, original), Accuracy(model_b, *reloaded),
              0.02);
  std::remove(path.c_str());
}

TEST(Integration, FactsAndBurdenAgreeOnWhoIsWorseOff) {
  // Two independent §IV-A lenses must agree about the direction of
  // recourse unfairness on the same model.
  BiasConfig cfg;
  cfg.score_shift = 1.2;
  Dataset data = CreditGen(cfg).Generate(900, 606);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  Rng rng(607);
  auto burden =
      ComputeBurden(model, data, BurdenScope::kAllNegatives, {}, &rng);
  auto facts = RunFacts(model, data, {});
  EXPECT_GT(burden.burden_gap, 0.0);
  EXPECT_GT(facts.overall_effectiveness_gap, 0.0)
      << "both lenses should indict the same group";
}

TEST(Integration, InfluenceAgreesWithGopherTopPattern) {
  // Gopher's pattern scoring is a sum of per-instance influences: summing
  // InfluenceOnParityGap over the pattern's members must reproduce the
  // pattern's estimated effect.
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(600, 608);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  GopherOptions opts;
  opts.top_k = 1;
  auto report = ExplainUnfairnessByPatterns(model, data, opts);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->patterns.empty());
  const auto& top = report->patterns.front();

  auto analyzer = InfluenceAnalyzer::Create(model, data);
  ASSERT_TRUE(analyzer.ok());
  const Vector influence = analyzer->InfluenceOnParityGap(data);
  // Re-match the pattern by hand through the same discretizer config.
  Discretizer disc(data, opts.bins);
  double manual = 0.0;
  size_t support = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    bool match = true;
    for (const auto& [f, b] : top.conditions) {
      if (disc.BinOf(f, data.x().At(i, f)) != b) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    manual += influence[i];
    ++support;
  }
  EXPECT_EQ(support, top.support);
  EXPECT_NEAR(manual, top.estimated_gap_change, 1e-9);
}

TEST(Integration, BlackBoxPipelineWorksOnGbm) {
  // Every black-box component must run unchanged on the boosted model.
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(900, 609);
  GradientBoostedTrees gbm;
  ASSERT_TRUE(gbm.Fit(data).ok());
  Rng rng(610);

  GroupFairnessReport audit = EvaluateGroupFairness(gbm, data);
  EXPECT_GT(audit.statistical_parity_difference, 0.1);

  auto burden =
      ComputeBurden(gbm, data, BurdenScope::kAllNegatives, {}, &rng);
  EXPECT_GT(burden.counterfactuals_protected +
                burden.counterfactuals_non_protected,
            20u);

  auto facts = RunFacts(gbm, data, {});
  EXPECT_GT(facts.subgroups_examined, 0u);

  auto shap = ExplainParityWithShapley(gbm, data, {});
  double sum = 0.0;
  for (double c : shap.contributions) sum += c;
  EXPECT_NEAR(sum, shap.full_gap - shap.baseline_gap, 1e-9);

  auto thresholds = FitGroupThresholds(gbm, data, {});
  ASSERT_TRUE(thresholds.ok());
  EXPECT_LT(std::fabs(StatisticalParityDifference(*thresholds, data)),
            std::fabs(audit.statistical_parity_difference));
}

TEST(Integration, RegistryMeasurementsAreInternallyConsistent) {
  // The Table I runner for [72] must agree with a direct ComputeBurden
  // call on the same fixtures — the registry is a view, not a fork.
  const RunContext ctx = RunContext::Make(611);
  Rng rng(ctx.seed);
  auto direct = ComputeBurden(ctx.credit_model, ctx.credit,
                              BurdenScope::kAllNegatives, {}, &rng);
  std::string measured;
  for (const auto& a : ApproachRegistry()) {
    if (a.citation == "[72]") measured = a.runner(ctx);
  }
  char expected[128];
  std::snprintf(expected, sizeof(expected), "gap=%.3f",
                direct.burden_gap);
  EXPECT_NE(measured.find(expected), std::string::npos)
      << "registry said '" << measured << "', direct computation gap="
      << direct.burden_gap;
}

}  // namespace
}  // namespace xfair
