// Golden tests for the dense kernel layer (src/util/kernels.h).
//
// The determinism contract says reduction kernels accumulate in a pinned
// four-lane order that is part of the API. These tests re-implement that
// order naively and demand 0-ulp equality (EXPECT_EQ on doubles) from
// every kernel, at every size class: empty, sub-lane (n < 4), exact
// multiples of the lane width, lane width + tail, and large. The
// dispatched entry points are also compared against the always-compiled
// detail::*Scalar references — in an XFAIR_SIMD build that comparison IS
// the SIMD-on/SIMD-off bit-identity guarantee, exercised on every CPU
// the suite runs on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/model/logistic_regression.h"
#include "src/model/softmax_regression.h"
#include "src/util/check.h"
#include "src/util/kernels.h"
#include "src/util/matrix.h"
#include "src/util/rng.h"

namespace xfair {
namespace {

// The size classes every kernel is tested at: 0, sub-lane, exactly one
// lane pass, lane + tail, several passes, and large-enough-to-vectorize.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 64, 1000};

std::vector<double> RandomVec(size_t n, Rng* rng, double lo = -2.0,
                              double hi = 2.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->Uniform(lo, hi);
  return v;
}

std::vector<uint8_t> RandomMask(size_t n, Rng* rng) {
  std::vector<uint8_t> m(n);
  for (uint8_t& b : m) b = rng->Uniform() < 0.5 ? 1 : 0;
  return m;
}

// Naive transcription of the documented pinned order: lane j takes
// elements j, j+4, ... over the first 4*floor(n/4) terms, combined as
// (l0 + l1) + (l2 + l3), tail added sequentially. For n < 4 the main
// loop is empty and this degenerates to the sequential sum.
template <typename Term>
double PinnedReduce(size_t n, Term term) {
  const size_t main = (n / 4) * 4;
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < main; ++i) lane[i % 4] += term(i);
  double total = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (size_t i = main; i < n; ++i) total += term(i);
  return total;
}

TEST(Kernels, DotMatchesPinnedOrderReference) {
  Rng rng(11);
  for (size_t n : kSizes) {
    const auto a = RandomVec(n, &rng), b = RandomVec(n, &rng);
    const double want =
        PinnedReduce(n, [&](size_t i) { return a[i] * b[i]; });
    EXPECT_EQ(kernels::Dot(a.data(), b.data(), n), want) << "n=" << n;
  }
}

TEST(Kernels, SquaredDistanceMatchesPinnedOrderReference) {
  Rng rng(12);
  for (size_t n : kSizes) {
    const auto a = RandomVec(n, &rng), b = RandomVec(n, &rng);
    const double want = PinnedReduce(n, [&](size_t i) {
      const double d = a[i] - b[i];
      return d * d;
    });
    EXPECT_EQ(kernels::SquaredDistance(a.data(), b.data(), n), want)
        << "n=" << n;
  }
}

TEST(Kernels, WeightedSquaredDistanceMatchesPinnedOrderReference) {
  Rng rng(13);
  for (size_t n : kSizes) {
    const auto a = RandomVec(n, &rng), b = RandomVec(n, &rng);
    const auto inv = RandomVec(n, &rng, 0.1, 3.0);
    const double want = PinnedReduce(n, [&](size_t i) {
      const double d = (a[i] - b[i]) * inv[i];
      return d * d;
    });
    EXPECT_EQ(kernels::WeightedSquaredDistance(a.data(), b.data(),
                                               inv.data(), n),
              want)
        << "n=" << n;
  }
}

TEST(Kernels, MaskedDotMatchesPinnedOrderReference) {
  Rng rng(14);
  for (size_t n : kSizes) {
    const auto w = RandomVec(n, &rng), a = RandomVec(n, &rng),
               b = RandomVec(n, &rng);
    const auto keep = RandomMask(n, &rng);
    const double want = PinnedReduce(
        n, [&](size_t i) { return w[i] * (keep[i] ? a[i] : b[i]); });
    EXPECT_EQ(
        kernels::MaskedDot(w.data(), a.data(), b.data(), keep.data(), n),
        want)
        << "n=" << n;
  }
}

// Bit-mask helper for the U64 kernels: n-row bitvector with the rows
// past n left zero, plus fill modes for the edge masks.
std::vector<uint64_t> BitMask(size_t n, Rng* rng, double density = 0.5) {
  std::vector<uint64_t> bits((n + 63) / 64, 0);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Uniform() < density) bits[i >> 6] |= uint64_t{1} << (i & 63);
  }
  return bits;
}

TEST(Kernels, MaskedSumU64MatchesPinnedOrderReference) {
  Rng rng(31);
  const size_t sizes[] = {0, 1, 3, 5, 63, 64, 65, 127, 128, 700, 1000};
  for (size_t n : sizes) {
    const auto v = RandomVec(n, &rng);
    for (double density : {0.0, 0.07, 0.5, 1.0}) {
      const auto bits = BitMask(n, &rng, density);
      // The zero-word skip never changes the value: a skipped word's
      // sixteen quads would each add 0.0 to every lane.
      const double want = PinnedReduce(n, [&](size_t i) {
        return (bits[i >> 6] >> (i & 63)) & 1 ? v[i] : 0.0;
      });
      EXPECT_EQ(kernels::MaskedSumU64(v.data(), bits.data(), n), want)
          << "n=" << n << " density=" << density;
      EXPECT_EQ(kernels::detail::MaskedSumU64Scalar(v.data(), bits.data(), n),
                want)
          << "n=" << n << " density=" << density;
    }
  }
}

TEST(Kernels, PopcountKernelsCountExactly) {
  Rng rng(32);
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 700u}) {
    const auto a = BitMask(n, &rng), b = BitMask(n, &rng);
    size_t want_a = 0, want_and = 0;
    for (size_t i = 0; i < n; ++i) {
      const bool in_a = (a[i >> 6] >> (i & 63)) & 1;
      const bool in_b = (b[i >> 6] >> (i & 63)) & 1;
      want_a += in_a;
      want_and += in_a && in_b;
    }
    EXPECT_EQ(kernels::PopcountU64(a.data(), a.size()), want_a) << "n=" << n;
    EXPECT_EQ(kernels::AndPopcountU64(a.data(), b.data(), a.size()), want_and)
        << "n=" << n;
    std::vector<uint64_t> out(a.size(), ~uint64_t{0});
    EXPECT_EQ(kernels::AndPopcountU64(a.data(), b.data(), out.data(),
                                      a.size()),
              want_and)
        << "n=" << n;
    EXPECT_EQ(kernels::PopcountU64(out.data(), out.size()), want_and);
  }
}

// Dispatched entry points vs the always-compiled scalar references. In
// an AVX2-enabled build this proves the SIMD specializations are
// bit-identical to the scalar pinned order; in a -DXFAIR_SIMD=OFF build
// both sides are the same code and the test documents that fact.
TEST(Kernels, DispatchedReducersMatchScalarReferencesExactly) {
  Rng rng(15);
  for (size_t n : kSizes) {
    const auto a = RandomVec(n, &rng), b = RandomVec(n, &rng);
    const auto inv = RandomVec(n, &rng, 0.1, 3.0);
    const auto keep = RandomMask(n, &rng);
    EXPECT_EQ(kernels::Dot(a.data(), b.data(), n),
              kernels::detail::DotScalar(a.data(), b.data(), n));
    EXPECT_EQ(kernels::SquaredDistance(a.data(), b.data(), n),
              kernels::detail::SquaredDistanceScalar(a.data(), b.data(), n));
    EXPECT_EQ(kernels::WeightedSquaredDistance(a.data(), b.data(),
                                               inv.data(), n),
              kernels::detail::WeightedSquaredDistanceScalar(
                  a.data(), b.data(), inv.data(), n));
    EXPECT_EQ(
        kernels::MaskedDot(a.data(), a.data(), b.data(), keep.data(), n),
        kernels::detail::MaskedDotScalar(a.data(), a.data(), b.data(),
                                         keep.data(), n));
    std::vector<double> y1 = b, y2 = b;
    kernels::Axpy(1.25, a.data(), y1.data(), n);
    kernels::detail::AxpyScalar(1.25, a.data(), y2.data(), n);
    EXPECT_EQ(y1, y2) << "n=" << n;
  }
}

TEST(Kernels, AxpyMatchesElementwiseReference) {
  Rng rng(16);
  for (size_t n : kSizes) {
    const auto x = RandomVec(n, &rng);
    auto y = RandomVec(n, &rng);
    auto want = y;
    const double alpha = 0.75;
    for (size_t i = 0; i < n; ++i) want[i] += alpha * x[i];
    kernels::Axpy(alpha, x.data(), y.data(), n);
    EXPECT_EQ(y, want) << "n=" << n;
  }
}

TEST(Kernels, ScaledAxpyEvaluatesAlphaTimesScaledX) {
  Rng rng(17);
  for (size_t n : kSizes) {
    const auto x = RandomVec(n, &rng);
    const auto scale = RandomVec(n, &rng, 0.1, 2.0);
    auto y = RandomVec(n, &rng);
    auto want = y;
    const double alpha = -0.5;
    // Documented association: alpha * (scale[i] * x[i]).
    for (size_t i = 0; i < n; ++i) want[i] += alpha * (scale[i] * x[i]);
    kernels::ScaledAxpy(alpha, scale.data(), x.data(), y.data(), n);
    EXPECT_EQ(y, want) << "n=" << n;
  }
}

TEST(Kernels, AccumSquaredDiffAndStandardizeMatchReferences) {
  Rng rng(18);
  for (size_t n : kSizes) {
    const auto x = RandomVec(n, &rng);
    const auto mean = RandomVec(n, &rng);
    const auto std = RandomVec(n, &rng, 0.5, 2.0);
    auto acc = RandomVec(n, &rng);
    auto want_acc = acc;
    for (size_t i = 0; i < n; ++i) {
      const double d = x[i] - mean[i];
      want_acc[i] += d * d;
    }
    kernels::AccumSquaredDiff(x.data(), mean.data(), acc.data(), n);
    EXPECT_EQ(acc, want_acc) << "n=" << n;

    std::vector<double> out(n), want(n);
    for (size_t i = 0; i < n; ++i) want[i] = (x[i] - mean[i]) / std[i];
    kernels::Standardize(x.data(), mean.data(), std.data(), out.data(), n);
    EXPECT_EQ(out, want) << "n=" << n;
  }
}

TEST(Kernels, StandardizeWithZeroMeanUnitStdIsExactIdentity) {
  // The scaler relies on pass-through columns (mean 0, std 1) being an
  // exact IEEE identity: (x - 0) / 1 == x for every double.
  Rng rng(19);
  const auto x = RandomVec(64, &rng, -1e12, 1e12);
  const std::vector<double> mean(64, 0.0), std(64, 1.0);
  std::vector<double> out(64);
  kernels::Standardize(x.data(), mean.data(), std.data(), out.data(), 64);
  EXPECT_EQ(out, x);
}

TEST(Kernels, MaskedBlendSelectsPerElement) {
  Rng rng(20);
  for (size_t n : kSizes) {
    const auto a = RandomVec(n, &rng), b = RandomVec(n, &rng);
    const auto keep = RandomMask(n, &rng);
    std::vector<double> out(n), want(n);
    for (size_t i = 0; i < n; ++i) want[i] = keep[i] ? a[i] : b[i];
    kernels::MaskedBlend(a.data(), b.data(), keep.data(), out.data(), n);
    EXPECT_EQ(out, want) << "n=" << n;
  }
}

TEST(Kernels, GemvMatchesPerRowPinnedDot) {
  Rng rng(21);
  for (size_t cols : kSizes) {
    const size_t rows = 5;
    const auto m = RandomVec(rows * cols, &rng);
    const auto v = RandomVec(cols, &rng);
    const auto bias = RandomVec(rows, &rng);
    std::vector<double> out(rows), out_b(rows);
    kernels::Gemv(m.data(), rows, cols, v.data(), 0.25, out.data());
    kernels::GemvBias(m.data(), rows, cols, v.data(), bias.data(),
                      out_b.data());
    for (size_t r = 0; r < rows; ++r) {
      const double dot = PinnedReduce(
          cols, [&](size_t c) { return m[r * cols + c] * v[c]; });
      EXPECT_EQ(out[r], 0.25 + dot) << "cols=" << cols << " r=" << r;
      EXPECT_EQ(out_b[r], bias[r] + dot) << "cols=" << cols << " r=" << r;
    }
  }
}

TEST(Kernels, MatVecTAccumulatesRowMajor) {
  Rng rng(22);
  for (size_t cols : kSizes) {
    const size_t rows = 7;
    const auto m = RandomVec(rows * cols, &rng);
    const auto v = RandomVec(rows, &rng);
    std::vector<double> out(cols, 0.5), want(cols, 0.5);
    for (size_t r = 0; r < rows; ++r)
      for (size_t c = 0; c < cols; ++c) want[c] += v[r] * m[r * cols + c];
    kernels::MatVecT(m.data(), rows, cols, v.data(), out.data());
    EXPECT_EQ(out, want) << "cols=" << cols;
  }
}

TEST(Kernels, SigmoidBatchMatchesScalarSigmoid) {
  Rng rng(23);
  for (size_t n : kSizes) {
    const auto z = RandomVec(n, &rng, -40.0, 40.0);
    std::vector<double> out(n);
    kernels::SigmoidBatch(z.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i)
      EXPECT_EQ(out[i], kernels::Sigmoid(z[i])) << "n=" << n << " i=" << i;
  }
}

TEST(Kernels, SigmoidIsBoundedAndMonotoneAtExtremes) {
  EXPECT_EQ(kernels::Sigmoid(0.0), 0.5);
  EXPECT_GT(kernels::Sigmoid(800.0), 0.999);
  EXPECT_LT(kernels::Sigmoid(-800.0), 0.001);
  EXPECT_TRUE(std::isfinite(kernels::Sigmoid(800.0)));
  EXPECT_TRUE(std::isfinite(kernels::Sigmoid(-800.0)));
}

TEST(Kernels, SoftmaxRowMatchesSequentialReference) {
  Rng rng(24);
  for (size_t k : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{16}}) {
    auto logits = RandomVec(k, &rng, -5.0, 5.0);
    auto want = logits;
    // Reference: sequential running max, exp, sequential denominator.
    double mx = want[0];
    for (size_t i = 1; i < k; ++i) mx = std::max(mx, want[i]);
    double denom = 0.0;
    for (size_t i = 0; i < k; ++i) {
      want[i] = std::exp(want[i] - mx);
      denom += want[i];
    }
    for (size_t i = 0; i < k; ++i) want[i] /= denom;
    kernels::SoftmaxRow(logits.data(), k);
    EXPECT_EQ(logits, want) << "k=" << k;
  }
}

TEST(Kernels, SgdPairUpdateReadsBothFactorsBeforeWriting) {
  Rng rng(25);
  for (size_t n : kSizes) {
    auto u = RandomVec(n, &rng), q = RandomVec(n, &rng);
    auto want_u = u, want_q = q;
    const double lr = 0.05, err = 0.3, l2 = 0.01;
    for (size_t i = 0; i < n; ++i) {
      const double pu = want_u[i], qi = want_q[i];
      want_u[i] -= lr * (err * qi + l2 * pu);
      want_q[i] -= lr * (err * pu + l2 * qi);
    }
    kernels::SgdPairUpdate(u.data(), q.data(), lr, err, l2, n);
    EXPECT_EQ(u, want_u) << "n=" << n;
    EXPECT_EQ(q, want_q) << "n=" << n;
  }
}

TEST(Kernels, SimdActiveReportsCompiledDispatch) {
#if defined(XFAIR_SIMD_ENABLED) && defined(__x86_64__)
  // With SIMD compiled in, activity depends only on the CPU; either way
  // the call must be consistent across invocations.
  EXPECT_EQ(kernels::SimdActive(), kernels::SimdActive());
#else
  EXPECT_FALSE(kernels::SimdActive());
#endif
}

// Repeated fits through the kernel paths must be bit-identical — the
// kernels are pure functions of their inputs, so refitting on the same
// data reproduces every weight exactly.
Dataset SmallBinaryDataset() {
  Rng rng(77);
  const size_t n = 80, d = 6;
  Matrix x(n, d);
  std::vector<int> y(n);
  std::vector<int> g(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t c = 0; c < d; ++c) {
      x.At(i, c) = rng.Normal(0.0, 1.0);
      s += x.At(i, c);
    }
    y[i] = s > 0 ? 1 : 0;
    g[i] = i % 2;
  }
  std::vector<FeatureSpec> specs(d);
  for (size_t c = 0; c < d; ++c) specs[c].name = "f" + std::to_string(c);
  return Dataset(Schema(std::move(specs), -1), std::move(x), std::move(y),
                 std::move(g));
}

TEST(Kernels, LogisticFitIsBitReproducible) {
  const Dataset data = SmallBinaryDataset();
  LogisticRegression a, b;
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  ASSERT_EQ(a.weights().size(), b.weights().size());
  for (size_t i = 0; i < a.weights().size(); ++i)
    EXPECT_EQ(a.weights()[i], b.weights()[i]);
  EXPECT_EQ(a.bias(), b.bias());
}

TEST(Kernels, SoftmaxFitIsBitReproducible) {
  const Dataset data = SmallBinaryDataset();
  SoftmaxRegression a, b;
  ASSERT_TRUE(a.Fit(data.x(), data.labels(), 2).ok());
  ASSERT_TRUE(b.Fit(data.x(), data.labels(), 2).ok());
  const Vector pa = a.PredictProba(data.x().Row(0));
  const Vector pb = b.PredictProba(data.x().Row(0));
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

#if XFAIR_DCHECK_IS_ON
using KernelsDeathTest = ::testing::Test;

TEST(KernelsDeathTest, MatrixAtOutOfBoundsFiresDcheck) {
  // Matrix::At demoted its hot-path bounds checks to XFAIR_DCHECK; this
  // build arms them (Debug or sanitizer), so out-of-bounds must abort.
  Matrix m(2, 3);
  EXPECT_DEATH((void)m.At(2, 0), "XFAIR_CHECK failed");
  EXPECT_DEATH((void)m.At(0, 3), "XFAIR_CHECK failed");
}
#endif  // XFAIR_DCHECK_IS_ON

}  // namespace
}  // namespace xfair
