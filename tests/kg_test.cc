// Tests for the knowledge-graph substrate and its integration with the
// fairness-aware path reranker [44].

#include <gtest/gtest.h>

#include <set>

#include "src/rec/knowledge_graph.h"

namespace xfair {
namespace {

/// A small movie-style KG:
///   user0 -watched-> item0 -genre-> gA <-genre- item1
///   user0 -watched-> item0 -director-> dX <-director- item2
///   user1 -watched-> item1
/// item3 is isolated (unreachable).
struct KgFixture {
  KnowledgeGraph kg;
  size_t user0, user1;
  size_t item0, item1, item2, item3;
  size_t genre_a, director_x;

  KgFixture() {
    user0 = kg.AddEntity(EntityType::kUser, "user0");
    user1 = kg.AddEntity(EntityType::kUser, "user1");
    item0 = kg.AddEntity(EntityType::kItem, "item0");
    item1 = kg.AddEntity(EntityType::kItem, "item1");
    item2 = kg.AddEntity(EntityType::kItem, "item2");
    item3 = kg.AddEntity(EntityType::kItem, "item3");
    genre_a = kg.AddEntity(EntityType::kAttribute, "genreA");
    director_x = kg.AddEntity(EntityType::kAttribute, "directorX");
    kg.AddTriple(user0, "watched", item0);
    kg.AddTriple(item0, "has_genre", genre_a);
    kg.AddTriple(item1, "has_genre", genre_a);
    kg.AddTriple(item0, "directed_by", director_x);
    kg.AddTriple(item2, "directed_by", director_x);
    kg.AddTriple(user1, "watched", item1);
  }
};

TEST(KnowledgeGraph, FindsPathsToUnconsumedItemsOnly) {
  KgFixture f;
  auto paths = f.kg.FindItemPaths(f.user0, 3);
  std::set<size_t> reached;
  for (const auto& p : paths) {
    reached.insert(p.entities.back());
    // Every path starts at the user and ends at an item.
    EXPECT_EQ(p.entities.front(), f.user0);
    EXPECT_EQ(f.kg.type(p.entities.back()), EntityType::kItem);
    EXPECT_EQ(p.relations.size(), p.entities.size() - 1);
    EXPECT_GT(p.relevance, 0.0);
    EXPECT_LE(p.relevance, 1.0);
  }
  // item1 via genre, item2 via director; item0 consumed; item3 isolated.
  EXPECT_TRUE(reached.count(f.item1));
  EXPECT_TRUE(reached.count(f.item2));
  EXPECT_FALSE(reached.count(f.item0));
  EXPECT_FALSE(reached.count(f.item3));
}

TEST(KnowledgeGraph, PathTypesDistinguishRelationSequences) {
  KgFixture f;
  auto paths = f.kg.FindItemPaths(f.user0, 3);
  int genre_type = -1, director_type = -1;
  for (const auto& p : paths) {
    if (p.entities.back() == f.item1) genre_type = p.type_id;
    if (p.entities.back() == f.item2) director_type = p.type_id;
  }
  ASSERT_NE(genre_type, -1);
  ASSERT_NE(director_type, -1);
  EXPECT_NE(genre_type, director_type)
      << "different relation sequences must get different path types";
}

TEST(KnowledgeGraph, HopLimitPrunesLongPaths) {
  KgFixture f;
  // 2 hops: user0 -> item0 -> genreA is attribute, not item; the item
  // endpoints need 3 hops. So max_hops=2 finds nothing.
  auto short_paths = f.kg.FindItemPaths(f.user0, 2);
  EXPECT_TRUE(short_paths.empty());
  auto long_paths = f.kg.FindItemPaths(f.user0, 3);
  EXPECT_FALSE(long_paths.empty());
}

TEST(KnowledgeGraph, RelevancePrefersSpecificPaths) {
  // Add a very popular genre hub: paths through it score below paths
  // through the niche director.
  KgFixture f;
  for (int i = 0; i < 8; ++i) {
    const size_t extra = f.kg.AddEntity(
        EntityType::kItem, "filler" + std::to_string(i));
    f.kg.AddTriple(extra, "has_genre", f.genre_a);
  }
  auto paths = f.kg.FindItemPaths(f.user0, 3);
  double via_genre = 0.0, via_director = 0.0;
  for (const auto& p : paths) {
    if (p.entities.back() == f.item1) via_genre = p.relevance;
    if (p.entities.back() == f.item2) via_director = p.relevance;
  }
  EXPECT_GT(via_director, via_genre)
      << "hub-mediated paths should be discounted";
}

TEST(KnowledgeGraph, CandidatesFeedTheFairReranker) {
  KgFixture f;
  // Grow the graph so the reranker has supply: attach more items to both
  // attribute hubs.
  std::vector<int> item_groups(f.kg.num_entities(), 0);
  for (int i = 0; i < 10; ++i) {
    const size_t it = f.kg.AddEntity(EntityType::kItem,
                                     "extra" + std::to_string(i));
    f.kg.AddTriple(it, i % 2 ? "has_genre" : "directed_by",
                   i % 2 ? f.genre_a : f.director_x);
    item_groups.resize(f.kg.num_entities(), 0);
    item_groups[it] = i % 3 == 0 ? 1 : 0;  // Some protected producers.
  }
  item_groups.resize(f.kg.num_entities(), 0);
  item_groups[f.item1] = 1;

  auto paths = f.kg.FindItemPaths(f.user0, 3);
  auto candidates = f.kg.ToCandidates(paths, item_groups);
  ASSERT_GE(candidates.size(), 5u);
  KgRerankOptions opts;
  opts.top_k = 5;
  opts.min_protected_exposure = 0.25;
  auto result = FairRerank(candidates, opts);
  EXPECT_EQ(result.ranking.size(), 5u);
  EXPECT_GE(result.exposure_after, result.exposure_before - 1e-12);
  EXPECT_GT(result.path_diversity, 0.0);
}

}  // namespace
}  // namespace xfair
