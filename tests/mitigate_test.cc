// Tests for src/mitigate: reweighing, massaging, fairness-penalized
// training (parity and recourse-equalizing), and group-threshold
// post-processing. Each mitigation must reduce its target gap on
// planted-bias data without destroying accuracy.

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generators.h"
#include "src/data/scaler.h"
#include "src/fairness/individual_metrics.h"
#include "src/fairness/group_metrics.h"
#include "src/mitigate/inprocess.h"
#include "src/mitigate/postprocess.h"
#include "src/mitigate/preprocess.h"
#include "src/unfair/recourse.h"

namespace xfair {
namespace {

struct BiasedSplit {
  Dataset train, test;
  LogisticRegression baseline;

  static BiasedSplit Make(uint64_t seed = 31) {
    BiasConfig cfg;
    cfg.score_shift = 1.0;
    cfg.label_bias = 0.1;
    Dataset all = CreditGen(cfg).Generate(2400, seed);
    Rng rng(seed + 1);
    auto [train, test] = all.Split(0.6, &rng);
    BiasedSplit s{std::move(train), std::move(test), {}};
    XFAIR_CHECK(s.baseline.Fit(s.train).ok());
    return s;
  }
};

TEST(Reweighing, WeightsEqualizeGroupLabelMass) {
  auto s = BiasedSplit::Make();
  Vector w = ReweighingWeights(s.train);
  ASSERT_EQ(w.size(), s.train.size());
  // Weighted P(y=1 | g) must be equal across groups.
  double mass[2] = {0, 0}, pos[2] = {0, 0};
  for (size_t i = 0; i < s.train.size(); ++i) {
    mass[s.train.group(i)] += w[i];
    pos[s.train.group(i)] += w[i] * s.train.label(i);
  }
  EXPECT_NEAR(pos[1] / mass[1], pos[0] / mass[0], 1e-9);
}

TEST(Reweighing, ReducesParityGap) {
  auto s = BiasedSplit::Make();
  const double base_gap =
      std::fabs(StatisticalParityDifference(s.baseline, s.test));
  LogisticRegression reweighed;
  ASSERT_TRUE(
      reweighed.Fit(s.train, {}, ReweighingWeights(s.train)).ok());
  const double new_gap =
      std::fabs(StatisticalParityDifference(reweighed, s.test));
  EXPECT_LT(new_gap, base_gap);
  EXPECT_GT(Accuracy(reweighed, s.test), 0.6);
}

TEST(Massaging, FlipsExactlyPairedLabels) {
  auto s = BiasedSplit::Make();
  Dataset massaged = MassageLabels(s.train, s.baseline, 40);
  size_t promoted = 0, demoted = 0;
  for (size_t i = 0; i < s.train.size(); ++i) {
    if (s.train.label(i) != massaged.label(i)) {
      if (massaged.label(i) == 1) {
        ++promoted;
        EXPECT_EQ(massaged.group(i), 1);
      } else {
        ++demoted;
        EXPECT_EQ(massaged.group(i), 0);
      }
    }
  }
  EXPECT_EQ(promoted, 40u);
  EXPECT_EQ(demoted, 40u);
}

TEST(Massaging, ReducesParityGap) {
  auto s = BiasedSplit::Make();
  const double base_gap =
      std::fabs(StatisticalParityDifference(s.baseline, s.test));
  // Flip enough pairs to matter (~where base rates equalize).
  Dataset massaged = MassageLabels(s.train, s.baseline, 120);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(massaged).ok());
  EXPECT_LT(std::fabs(StatisticalParityDifference(model, s.test)),
            base_gap);
}

TEST(FairTraining, LambdaZeroMatchesPlainTraining) {
  auto s = BiasedSplit::Make();
  FairTrainingOptions opts;
  opts.lambda = 0.0;
  auto fair = TrainFairLogisticRegression(s.train, opts);
  ASSERT_TRUE(fair.ok());
  // Same sign structure and similar accuracy as the plain baseline.
  EXPECT_NEAR(Accuracy(*fair, s.test), Accuracy(s.baseline, s.test), 0.05);
}

TEST(FairTraining, ParityPenaltyShrinksGapMonotonically) {
  auto s = BiasedSplit::Make();
  double prev_gap = 1e9;
  for (double lambda : {0.0, 2.0, 20.0}) {
    FairTrainingOptions opts;
    opts.penalty = FairPenalty::kParity;
    opts.lambda = lambda;
    auto model = TrainFairLogisticRegression(s.train, opts);
    ASSERT_TRUE(model.ok());
    const double gap =
        std::fabs(StatisticalParityDifference(*model, s.test));
    EXPECT_LT(gap, prev_gap + 0.02)
        << "gap should not grow with lambda=" << lambda;
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.08) << "strong penalty should nearly close the gap";
}

TEST(FairTraining, RecoursePenaltyShrinksRecourseGap) {
  auto s = BiasedSplit::Make();
  const double base_gap =
      std::fabs(EvaluateGroupRecourse(s.baseline, s.test).recourse_gap);
  FairTrainingOptions opts;
  opts.penalty = FairPenalty::kRecourse;
  opts.lambda = 5.0;
  auto model = TrainFairLogisticRegression(s.train, opts);
  ASSERT_TRUE(model.ok());
  const double new_gap =
      std::fabs(EvaluateGroupRecourse(*model, s.test).recourse_gap);
  EXPECT_LT(new_gap, base_gap);
}

TEST(FairTraining, RejectsSingleGroupData) {
  Dataset d = CreditGen().Generate(100, 33);
  Dataset only_g1 = d.Subset(d.GroupIndices(1));
  FairTrainingOptions opts;
  EXPECT_FALSE(TrainFairLogisticRegression(only_g1, opts).ok());
}

class ThresholdCriterionTest
    : public ::testing::TestWithParam<ThresholdCriterion> {};

TEST_P(ThresholdCriterionTest, ClosesItsGap) {
  auto s = BiasedSplit::Make();
  ThresholdSearchOptions opts;
  opts.criterion = GetParam();
  auto wrapped = FitGroupThresholds(s.baseline, s.train, opts);
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();
  double before = 0.0, after = 0.0;
  switch (GetParam()) {
    case ThresholdCriterion::kStatisticalParity:
      before = std::fabs(StatisticalParityDifference(s.baseline, s.test));
      after = std::fabs(StatisticalParityDifference(*wrapped, s.test));
      break;
    case ThresholdCriterion::kEqualOpportunity:
      before = std::fabs(EqualOpportunityDifference(s.baseline, s.test));
      after = std::fabs(EqualOpportunityDifference(*wrapped, s.test));
      break;
    case ThresholdCriterion::kEqualizedOdds:
      before = EqualizedOddsDifference(s.baseline, s.test);
      after = EqualizedOddsDifference(*wrapped, s.test);
      break;
  }
  EXPECT_LT(after, before);
  EXPECT_GT(Accuracy(*wrapped, s.test), 0.55);
}

INSTANTIATE_TEST_SUITE_P(
    AllCriteria, ThresholdCriterionTest,
    ::testing::Values(ThresholdCriterion::kStatisticalParity,
                      ThresholdCriterion::kEqualOpportunity,
                      ThresholdCriterion::kEqualizedOdds));

TEST(Thresholds, WrapperUsesGroupSpecificCutoffs) {
  auto s = BiasedSplit::Make();
  GroupThresholdModel wrapped(&s.baseline, 0, 0.8, 0.2);
  // A protected instance with mid score passes; non-protected fails.
  Vector x = s.train.instance(0);
  x[0] = 1.0;
  const double p = wrapped.PredictProba(x);
  if (p >= 0.2 && p < 0.8) {
    EXPECT_EQ(wrapped.Predict(x), 1);
    x[0] = 0.0;
    // Score changes with x[0] for this model; just check thresholds are
    // reported faithfully.
  }
  EXPECT_DOUBLE_EQ(wrapped.threshold_protected(), 0.2);
  EXPECT_DOUBLE_EQ(wrapped.threshold_non_protected(), 0.8);
}

TEST(Thresholds, FailsWithoutSensitiveColumn) {
  Dataset d = CreditGen().Generate(200, 34);
  Dataset blind = d.WithoutFeature(0);  // Drops the sensitive column.
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(blind).ok());
  auto result = FitGroupThresholds(lr, blind, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FairTraining, IndividualPenaltyImprovesLipschitzConsistency) {
  // The Lipschitz surrogate should lower the violation rate against the
  // same constant it was trained with, at some accuracy cost.
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(900, 35);
  // Evaluate in standardized space so the metric matches the penalty.
  StandardScaler scaler;
  scaler.Fit(data);
  Dataset scaled = scaler.Transform(data);

  LogisticRegression baseline;
  ASSERT_TRUE(baseline.Fit(scaled).ok());
  FairTrainingOptions opts;
  opts.penalty = FairPenalty::kIndividual;
  opts.lambda = 5.0;
  opts.lipschitz = 0.1;
  auto smooth = TrainFairLogisticRegression(scaled, opts);
  ASSERT_TRUE(smooth.ok());

  Rng rng(36);
  const double violations_base =
      LipschitzViolationRate(baseline, scaled, opts.lipschitz, 3000, &rng);
  const double violations_smooth =
      LipschitzViolationRate(*smooth, scaled, opts.lipschitz, 3000, &rng);
  EXPECT_LT(violations_smooth, violations_base);
  EXPECT_GT(Accuracy(*smooth, scaled), 0.55);
}

TEST(FairTraining, IndividualPenaltyIsDeterministic) {
  Dataset data = CreditGen().Generate(300, 37);
  FairTrainingOptions opts;
  opts.penalty = FairPenalty::kIndividual;
  opts.lambda = 2.0;
  auto a = TrainFairLogisticRegression(data, opts);
  auto b = TrainFairLogisticRegression(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t c = 0; c < a->weights().size(); ++c) {
    EXPECT_DOUBLE_EQ(a->weights()[c], b->weights()[c]);
  }
}

}  // namespace
}  // namespace xfair
