// Tests for src/model: logistic regression, CART, forest, kNN, Platt
// calibration, and classification metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generators.h"
#include "src/data/scaler.h"
#include "src/model/calibration.h"
#include "src/model/decision_tree.h"
#include "src/model/knn.h"
#include "src/model/logistic_regression.h"
#include "src/model/metrics.h"
#include "src/model/random_forest.h"

namespace xfair {
namespace {

/// Linearly separable toy data: y = 1 iff x0 + x1 > 0.
Dataset SeparableData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> rows;
  std::vector<int> labels, groups;
  for (size_t i = 0; i < n; ++i) {
    double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    rows.push_back({a, b});
    labels.push_back(a + b > 0 ? 1 : 0);
    groups.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  Schema schema({FeatureSpec{"x0"}, FeatureSpec{"x1"}}, -1);
  return Dataset(schema, Matrix::FromRows(rows), labels, groups);
}

TEST(LogisticRegression, LearnsSeparableData) {
  Dataset d = SeparableData(500, 1);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  EXPECT_GT(Accuracy(lr, d), 0.95);
  // Learned direction must be positive on both coordinates.
  EXPECT_GT(lr.weights()[0], 0.0);
  EXPECT_GT(lr.weights()[1], 0.0);
}

TEST(LogisticRegression, RejectsEmptyAndMismatchedWeights) {
  LogisticRegression lr;
  Schema schema({FeatureSpec{"x"}}, -1);
  Dataset empty(schema, Matrix(0, 1), {}, {});
  EXPECT_EQ(lr.Fit(empty).code(), StatusCode::kInvalidArgument);
  Dataset d = SeparableData(10, 2);
  EXPECT_EQ(lr.Fit(d, {}, Vector{1.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(lr.Fit(d, {}, Vector(10, 0.0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(LogisticRegression, GradientMatchesFiniteDifference) {
  Dataset d = SeparableData(200, 3);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  Vector x = {0.3, -0.7};
  Vector grad = lr.ProbaGradient(x);
  const double eps = 1e-6;
  for (size_t c = 0; c < x.size(); ++c) {
    Vector xp = x, xm = x;
    xp[c] += eps;
    xm[c] -= eps;
    const double fd =
        (lr.PredictProba(xp) - lr.PredictProba(xm)) / (2 * eps);
    EXPECT_NEAR(grad[c], fd, 1e-5);
  }
}

TEST(LogisticRegression, InstanceWeightsShiftModel) {
  // Weighting only class-1 instances should push predictions up.
  Dataset d = SeparableData(300, 4);
  Vector w(d.size(), 1.0);
  for (size_t i = 0; i < d.size(); ++i)
    if (d.label(i) == 1) w[i] = 10.0;
  LogisticRegression plain, weighted;
  ASSERT_TRUE(plain.Fit(d).ok());
  ASSERT_TRUE(weighted.Fit(d, {}, w).ok());
  Vector x = {0.0, 0.0};
  EXPECT_GT(weighted.PredictProba(x), plain.PredictProba(x));
}

TEST(LogisticRegression, MarginAndBoundaryDistance) {
  LogisticRegression lr;
  lr.SetParameters({3.0, 4.0}, 0.0);  // ||w|| = 5
  Vector x = {1.0, 0.5};              // margin = 5
  EXPECT_NEAR(lr.Margin(x), 5.0, 1e-12);
  EXPECT_NEAR(lr.DistanceToBoundary(x), 1.0, 1e-12);
  lr.set_threshold(0.5);
  Vector on_boundary = {0.0, 0.0};
  EXPECT_NEAR(lr.DistanceToBoundary(on_boundary), 0.0, 1e-12);
}

TEST(DecisionTree, LearnsXor) {
  // XOR is non-linear: a depth-2 tree should nail it; LR cannot.
  std::vector<Vector> rows;
  std::vector<int> labels, groups;
  Rng rng(5);
  for (size_t i = 0; i < 400; ++i) {
    double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    rows.push_back({a, b});
    labels.push_back((a > 0) != (b > 0) ? 1 : 0);
    groups.push_back(0);
  }
  Schema schema({FeatureSpec{"x0"}, FeatureSpec{"x1"}}, -1);
  Dataset d(schema, Matrix::FromRows(rows), labels, groups);
  DecisionTree tree;
  DecisionTreeOptions opts;
  opts.max_depth = 5;
  opts.min_samples_leaf = 2;
  ASSERT_TRUE(tree.Fit(d, opts).ok());
  EXPECT_GT(Accuracy(tree, d), 0.93);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Dataset d = SeparableData(300, 6);
  DecisionTree tree;
  DecisionTreeOptions opts;
  opts.max_depth = 1;
  ASSERT_TRUE(tree.Fit(d, opts).ok());
  // Depth 1 means at most 3 nodes (root + two leaves).
  EXPECT_LE(tree.nodes().size(), 3u);
}

TEST(DecisionTree, LeafIndexConsistentWithProba) {
  Dataset d = SeparableData(200, 7);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(d).ok());
  for (size_t i = 0; i < 20; ++i) {
    Vector x = d.instance(i);
    const int leaf = tree.LeafIndex(x);
    EXPECT_DOUBLE_EQ(tree.nodes()[static_cast<size_t>(leaf)].proba,
                     tree.PredictProba(x));
  }
}

TEST(DecisionTree, ZeroWeightsRejected) {
  Dataset d = SeparableData(50, 8);
  DecisionTree tree;
  EXPECT_EQ(tree.Fit(d, {}, Vector(50, 0.0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(RandomForest, BeatsSingleStumpOnCredit) {
  CreditGen gen;
  Dataset d = gen.Generate(1200, 9);
  Rng rng(10);
  auto [train, test] = d.Split(0.7, &rng);
  RandomForest forest;
  RandomForestOptions fo;
  fo.num_trees = 30;
  ASSERT_TRUE(forest.Fit(train, fo).ok());
  DecisionTree stump;
  DecisionTreeOptions so;
  so.max_depth = 1;
  ASSERT_TRUE(stump.Fit(train, so).ok());
  EXPECT_GE(Accuracy(forest, test), Accuracy(stump, test));
  EXPECT_GT(Auc(forest, test), 0.7);
}

TEST(RandomForest, ProbaIsMeanOfTrees) {
  Dataset d = SeparableData(200, 11);
  RandomForest forest;
  RandomForestOptions fo;
  fo.num_trees = 5;
  ASSERT_TRUE(forest.Fit(d, fo).ok());
  Vector x = {0.4, -0.2};
  double acc = 0.0;
  for (const auto& t : forest.trees()) acc += t.PredictProba(x);
  EXPECT_NEAR(forest.PredictProba(x), acc / 5.0, 1e-12);
}

TEST(Knn, PredictsByNeighborhood) {
  Dataset d = SeparableData(400, 12);
  KnnClassifier knn(7);
  ASSERT_TRUE(knn.Fit(d).ok());
  EXPECT_GT(Accuracy(knn, d), 0.9);
}

TEST(Knn, NeighborsSortedByDistance) {
  Dataset d = SeparableData(100, 13);
  KnnClassifier knn(5);
  ASSERT_TRUE(knn.Fit(d).ok());
  Vector x = {0.1, 0.1};
  auto nn = knn.Neighbors(x, 5);
  double prev = 0.0;
  for (size_t i : nn) {
    const double dist = Norm2(Sub(d.instance(i), x));
    EXPECT_GE(dist, prev);
    prev = dist;
  }
}

TEST(Knn, RejectsBadK) {
  Dataset d = SeparableData(5, 14);
  KnnClassifier knn(10);
  EXPECT_EQ(knn.Fit(d).code(), StatusCode::kInvalidArgument);
}

TEST(Calibration, ReducesCalibrationError) {
  CreditGen gen;
  Dataset d = gen.Generate(3000, 15);
  Rng rng(16);
  auto [train, rest] = d.Split(0.5, &rng);
  auto [calib, test] = rest.Split(0.5, &rng);
  RandomForest forest;  // Forests are typically over-confident.
  RandomForestOptions fo;
  fo.num_trees = 10;
  fo.max_depth = 10;
  ASSERT_TRUE(forest.Fit(train, fo).ok());
  PlattCalibrator platt(&forest);
  ASSERT_TRUE(platt.Fit(calib).ok());
  EXPECT_LE(ExpectedCalibrationError(platt, test),
            ExpectedCalibrationError(forest, test) + 0.02);
}

TEST(Metrics, ConfusionArithmetic) {
  Confusion c{.tp = 30, .fp = 10, .tn = 50, .fn = 10};
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(c.tpr(), 0.75);
  EXPECT_DOUBLE_EQ(c.fnr(), 0.25);
  EXPECT_NEAR(c.fpr(), 10.0 / 60.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.positive_rate(), 0.4);
}

TEST(Metrics, AucPerfectAndRandom) {
  Dataset d = SeparableData(300, 17);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  EXPECT_GT(Auc(lr, d), 0.98);

  // Constant scores give AUC 0.5 via midranks.
  LogisticRegression flat;
  flat.SetParameters({0.0, 0.0}, 0.0);
  EXPECT_NEAR(Auc(flat, d), 0.5, 1e-12);
}

TEST(Metrics, ConfusionOnSubsetOnly) {
  Dataset d = SeparableData(100, 18);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  auto g1 = d.GroupIndices(1);
  Confusion c = EvaluateConfusion(lr, d, g1);
  EXPECT_EQ(c.total(), g1.size());
}

}  // namespace
}  // namespace xfair
