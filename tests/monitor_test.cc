// Tests for src/obs/monitor + exposition: windowed metrics must replay
// the offline fairness/group_metrics arithmetic exactly, drift alarms
// must recover a planted change point within one window, sentinel
// conventions (unlabeled streams, single-group windows, out-of-range
// groups) must match PR 3, and every rendering (snapshot JSON,
// Prometheus text) must be deterministic. Thread-count invariance of
// concurrent ingestion lives in parallel_test.cc with the other
// pool-reconfiguring tests.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/fairness/group_metrics.h"
#include "src/model/logistic_regression.h"
#include "src/obs/obs.h"
#include "src/obs/run_report.h"

namespace xfair {
namespace {

using obs::DriftAlarm;
using obs::FairnessMonitor;
using obs::MonitorEvent;
using obs::MonitorOptions;
using obs::ScopedStreamContext;
using obs::WindowedMetrics;

/// Restores the monitoring-disabled default when a test exits.
struct MonitorGuard {
  MonitorGuard() { obs::SetMonitoringEnabled(false); }
  ~MonitorGuard() { obs::SetMonitoringEnabled(false); }
};

/// Streams `data` through `model`'s batched path into `monitor` in
/// batches of `batch` rows, draining after every batch.
void StreamDataset(const Model& model, const Dataset& data,
                   FairnessMonitor& monitor, size_t batch) {
  for (size_t start = 0; start < data.size(); start += batch) {
    const size_t n = std::min(batch, data.size() - start);
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) rows[i] = start + i;
    const Dataset slice = data.Subset(rows);
    {
      ScopedStreamContext stream(&monitor, slice.groups().data(),
                                 slice.labels().data(), slice.size());
      (void)model.PredictProbaBatch(slice.x());
    }
    monitor.Drain();
  }
}

TEST(Monitor, WindowedMetricsMatchOfflineGroupMetrics) {
  MonitorGuard guard;
  BiasConfig bias;
  bias.score_shift = 1.0;
  bias.label_bias = 0.1;
  const Dataset data = CreditGen(bias).Generate(900, 11);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());

  const size_t window = 256;
  MonitorOptions mopts;
  mopts.window = window;
  FairnessMonitor monitor("monitor_test/offline_match", mopts);
  obs::SetMonitoringEnabled(true);
  StreamDataset(model, data, monitor, /*batch=*/90);
  obs::SetMonitoringEnabled(false);

  // The window now holds the last 256 rows in stream order; the offline
  // metrics on exactly those rows must agree to 1e-12 (the window scan
  // replays the offline accumulation order, not an incremental update).
  std::vector<size_t> tail(window);
  for (size_t i = 0; i < window; ++i) {
    tail[i] = data.size() - window + i;
  }
  const Dataset sub = data.Subset(tail);
  const WindowedMetrics wm = monitor.Windowed();
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(wm.events, 0u);
  EXPECT_EQ(monitor.events_processed(), 0u);
#else
  EXPECT_EQ(monitor.events_processed(), data.size());
  EXPECT_EQ(wm.events, window);
  EXPECT_EQ(wm.labeled, window);
  EXPECT_EQ(wm.first_seq, data.size() - window);
  EXPECT_EQ(wm.last_seq, data.size() - 1);
  EXPECT_FALSE(wm.single_group);
  const double dp = StatisticalParityDifference(model, sub);
  const double eo = EqualizedOddsDifference(model, sub);
  const double cal = CalibrationGap(model, sub, 10);
  EXPECT_NEAR(wm.demographic_parity_diff, dp, 1e-12);
  EXPECT_NEAR(wm.equalized_odds_diff, eo, 1e-12);
  EXPECT_NEAR(wm.calibration_gap, cal, 1e-12);
  // The planted bias makes the comparison non-vacuous.
  EXPECT_GT(std::fabs(dp), 1e-3);

  // Cumulative aggregates cover the full stream.
  const auto& aggs = monitor.aggregates();
  uint64_t total = 0;
  for (const auto& a : aggs) total += a.events;
  EXPECT_EQ(total, data.size());
  EXPECT_GT(aggs[0].events, 0u);
  EXPECT_GT(aggs[1].events, 0u);
  EXPECT_GT(aggs[0].score_variance(), 0.0);
#endif
}

TEST(MonitorDrift, PlantedShiftRaisesAlarmWithinOneWindow) {
  MonitorGuard guard;
  // The example_monitor_stream workload, shrunk: train on an unbiased
  // world, then swap the traffic distribution to a strongly biased one
  // at a known step. The windowed demographic-parity gap jumps from ~0
  // to ~0.2 and the detectors must notice within one window — and must
  // not fire on the stationary pre-shift segment.
  BiasConfig pre;
  pre.score_shift = 0.0;
  pre.label_bias = 0.0;
  pre.proxy_strength = 0.0;
  pre.qualification_gap = 0.0;
  BiasConfig post = pre;
  post.score_shift = 1.2;
  post.qualification_gap = 1.5;
  post.proxy_strength = 0.8;
  post.label_bias = 0.15;

  Dataset train = CreditGen(pre).Generate(1200, 7);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(train).ok());

  const size_t events = 3072, shift_at = 1536, window = 512, batch = 64;
  const Dataset pre_t = CreditGen(pre).Generate(events, 21);
  const Dataset post_t = CreditGen(post).Generate(events, 22);

  MonitorOptions mopts;
  mopts.window = window;
  FairnessMonitor monitor("monitor_test/planted_drift", mopts);
  obs::SetMonitoringEnabled(true);
  for (size_t start = 0; start < events; start += batch) {
    const Dataset& world = start >= shift_at ? post_t : pre_t;
    std::vector<size_t> rows(batch);
    for (size_t i = 0; i < batch; ++i) rows[i] = start + i;
    const Dataset slice = world.Subset(rows);
    {
      ScopedStreamContext stream(&monitor, slice.groups().data(),
                                 slice.labels().data(), slice.size());
      (void)model.PredictProbaBatch(slice.x());
    }
    monitor.Drain();
  }
  obs::SetMonitoringEnabled(false);

#ifdef XFAIR_OBS_DISABLED
  EXPECT_TRUE(monitor.alarms().empty());
#else
  ASSERT_FALSE(monitor.alarms().empty());
  // No false alarms on the stationary segment.
  for (const DriftAlarm& a : monitor.alarms()) {
    EXPECT_GT(a.seq, shift_at) << a.metric << "/" << a.detector;
  }
  // The change point is recovered within one window, and the first
  // alarm is the demographic-parity gap (the directly shifted metric).
  const DriftAlarm& first = monitor.alarms().front();
  EXPECT_EQ(first.metric, "demographic_parity");
  EXPECT_LE(first.seq, shift_at + window);
  bool dp_alarm_in_window = false;
  for (const DriftAlarm& a : monitor.alarms()) {
    dp_alarm_in_window |= a.metric == "demographic_parity" &&
                          a.seq > shift_at && a.seq <= shift_at + window;
  }
  EXPECT_TRUE(dp_alarm_in_window);
#endif
}

TEST(Monitor, UnlabeledStreamReportsParityButLabelSentinels) {
  MonitorGuard guard;
  MonitorOptions mopts;
  mopts.window = 64;
  FairnessMonitor monitor("monitor_test/unlabeled", mopts);
  // Unlabeled traffic (label = -1): parity is still measurable from
  // predictions alone; the label-conditioned metrics report their 0
  // sentinels instead of garbage.
  for (uint64_t i = 0; i < 64; ++i) {
    const int group = static_cast<int>(i % 2);
    const int pred = group == 0 ? static_cast<int>(i % 4 != 0) : 0;
    monitor.Ingest({i, pred ? 0.9 : 0.1, pred, -1, group});
  }
  monitor.Drain();
  const WindowedMetrics wm = monitor.Windowed();
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(wm.events, 0u);
#else
  EXPECT_EQ(wm.events, 64u);
  EXPECT_EQ(wm.labeled, 0u);
  EXPECT_FALSE(wm.single_group);
  // Group 0 (even i): predicted positive iff i % 4 == 2, rate 1/2.
  // Group 1 (odd i): never positive. dp = 0.5 - 0.
  EXPECT_NEAR(wm.demographic_parity_diff, 0.5, 1e-12);
  EXPECT_EQ(wm.equalized_odds_diff, 0.0);
  EXPECT_EQ(wm.calibration_gap, 0.0);
  EXPECT_EQ(monitor.aggregates()[0].labeled, 0u);
  EXPECT_EQ(monitor.aggregates()[0].tpr(), 0.0);
  EXPECT_EQ(monitor.aggregates()[0].fpr(), 0.0);
#endif
}

TEST(Monitor, SingleGroupWindowReportsFairSentinels) {
  MonitorGuard guard;
  MonitorOptions mopts;
  mopts.window = 32;
  FairnessMonitor monitor("monitor_test/single_group", mopts);
  // Only group 0 present: no between-group comparison to make, so every
  // difference reports 0 (PR 3 convention) even though the group's own
  // positive rate is far from 0.
  for (uint64_t i = 0; i < 32; ++i) {
    monitor.Ingest({i, 0.8, 1, 1, 0});
  }
  monitor.Drain();
  const WindowedMetrics wm = monitor.Windowed();
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(wm.events, 0u);
#else
  EXPECT_EQ(wm.events, 32u);
  EXPECT_TRUE(wm.single_group);
  EXPECT_EQ(wm.demographic_parity_diff, 0.0);
  EXPECT_EQ(wm.equalized_odds_diff, 0.0);
  EXPECT_EQ(wm.calibration_gap, 0.0);
  EXPECT_DOUBLE_EQ(monitor.aggregates()[0].positive_rate(), 1.0);
#endif
}

TEST(Monitor, OutOfRangeGroupsAreCountedAsDropped) {
  MonitorGuard guard;
  FairnessMonitor monitor("monitor_test/dropped");
  monitor.Ingest({0, 0.5, 1, 1, -1});
  monitor.Ingest({1, 0.5, 1, 1, FairnessMonitor::kMaxGroups});
  monitor.Ingest({2, 0.5, 1, 1, 0});
  monitor.Drain();
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(monitor.events_dropped(), 0u);
#else
  EXPECT_EQ(monitor.events_dropped(), 2u);
  EXPECT_EQ(monitor.events_processed(), 1u);
#endif
}

TEST(Monitor, DrainOrderAndSnapshotIndependentOfBatchSize) {
  MonitorGuard guard;
  BiasConfig bias;
  bias.score_shift = 1.0;
  const Dataset data = CreditGen(bias).Generate(600, 13);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());

  // The same stream drained after every 32 events and after every 600
  // events must produce byte-identical snapshots: detector updates key
  // off events_processed, never off drain cadence.
  std::string snapshots[2];
  const size_t batches[2] = {32, 600};
  for (int v = 0; v < 2; ++v) {
    MonitorOptions mopts;
    mopts.window = 128;
    FairnessMonitor monitor("monitor_test/batch_size", mopts);
    obs::SetMonitoringEnabled(true);
    StreamDataset(model, data, monitor, batches[v]);
    obs::SetMonitoringEnabled(false);
    snapshots[v] = monitor.SnapshotJson();
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
}

TEST(Monitor, SnapshotJsonIsDeterministicWithSortedKeys) {
  MonitorGuard guard;
  FairnessMonitor monitor("monitor_test/snapshot");
  for (uint64_t i = 0; i < 16; ++i) {
    monitor.Ingest({i, 0.25 + 0.5 * static_cast<double>(i % 2),
                    static_cast<int>(i % 2), static_cast<int>(i % 3 == 0),
                    static_cast<int>(i % 2)});
  }
  monitor.Drain();
  const std::string a = monitor.SnapshotJson();
  EXPECT_EQ(a, monitor.SnapshotJson());
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(a, "{}");
#else
  // Top-level keys render in sorted order.
  const size_t alarms = a.find("\"alarms\"");
  const size_t dropped = a.find("\"events_dropped\"");
  const size_t processed = a.find("\"events_processed\"");
  const size_t groups = a.find("\"groups\"");
  const size_t window = a.find("\"window\"");
  ASSERT_NE(alarms, std::string::npos);
  ASSERT_NE(window, std::string::npos);
  EXPECT_LT(alarms, dropped);
  EXPECT_LT(dropped, processed);
  EXPECT_LT(processed, groups);
  EXPECT_LT(groups, window);
#endif
}

TEST(Monitor, ResetClearsStateAndSequenceCounter) {
  MonitorGuard guard;
  FairnessMonitor monitor("monitor_test/reset");
  const uint64_t base = monitor.ReserveSeq(8);
  for (uint64_t i = 0; i < 8; ++i) {
    monitor.Ingest({base + i, 0.9, 1, 1, static_cast<int>(i % 2)});
  }
  monitor.Drain();
  monitor.Reset();
  EXPECT_EQ(monitor.events_processed(), 0u);
  EXPECT_EQ(monitor.events_dropped(), 0u);
  EXPECT_TRUE(monitor.alarms().empty());
  EXPECT_EQ(monitor.Windowed().events, 0u);
  EXPECT_EQ(monitor.ReserveSeq(1), 0u);
  // Pending (undrained) events are discarded too.
  monitor.Ingest({5, 0.9, 1, 1, 0});
  monitor.Reset();
  EXPECT_EQ(monitor.Drain(), 0u);
}

TEST(Monitor, HookIngestsOnlyWithMatchingStreamContext) {
  MonitorGuard guard;
  FairnessMonitor monitor("monitor_test/hook");
  const double scores[4] = {0.9, 0.1, 0.8, 0.2};
  const int groups[4] = {0, 0, 1, 1};

  // No context installed: inert even with monitoring enabled.
  obs::SetMonitoringEnabled(true);
  obs::MonitorPredictionBatch(scores, 4, 0.5);
  monitor.Drain();
  EXPECT_EQ(monitor.events_processed(), 0u);

  // Context with a mismatched row count: inert (the batch is not the
  // stream the caller described).
  {
    ScopedStreamContext stream(&monitor, groups, nullptr, 3);
    EXPECT_FALSE(obs::MonitorActive(4));
    obs::MonitorPredictionBatch(scores, 4, 0.5);
  }
  monitor.Drain();
  EXPECT_EQ(monitor.events_processed(), 0u);

  // Matching context: one event per row, unlabeled.
  {
    ScopedStreamContext stream(&monitor, groups, nullptr, 4);
    EXPECT_EQ(obs::MonitorActive(4), obs::MonitoringCompiledIn());
    obs::MonitorPredictionBatch(scores, 4, 0.5);
  }
  monitor.Drain();
  obs::SetMonitoringEnabled(false);
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(monitor.events_processed(), 0u);
#else
  EXPECT_EQ(monitor.events_processed(), 4u);
  EXPECT_EQ(monitor.aggregates()[0].predicted_positive, 1u);
  EXPECT_EQ(monitor.aggregates()[1].predicted_positive, 1u);
  EXPECT_EQ(monitor.aggregates()[0].labeled, 0u);

  // Disabled at runtime: the hook goes inert again.
  {
    ScopedStreamContext stream(&monitor, groups, nullptr, 4);
    EXPECT_FALSE(obs::MonitorActive(4));
    obs::MonitorPredictionBatch(scores, 4, 0.5);
  }
  monitor.Drain();
  EXPECT_EQ(monitor.events_processed(), 4u);
#endif
}

TEST(Exposition, PrometheusTextIsDeterministicAndWellFormed) {
  MonitorGuard guard;
  FairnessMonitor& monitor =
      obs::GetMonitor("monitor_test/exposition", MonitorOptions{});
  monitor.Reset();
  for (uint64_t i = 0; i < 32; ++i) {
    monitor.Ingest({i, i % 2 ? 0.9 : 0.1, static_cast<int>(i % 2),
                    static_cast<int>(i % 2), static_cast<int>(i % 2)});
  }
  monitor.Drain();
  const std::string text = obs::RenderPrometheusText();
  EXPECT_EQ(text, obs::RenderPrometheusText());
#ifdef XFAIR_OBS_DISABLED
  EXPECT_TRUE(text.empty());
#else
  EXPECT_NE(text.find("# TYPE xfair_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("xfair_monitor_events_total{"
                      "monitor=\"monitor_test/exposition\",group=\"1\"} 16"),
            std::string::npos);
  EXPECT_NE(
      text.find("xfair_monitor_window_gap{monitor=\"monitor_test/"
                "exposition\",metric=\"demographic_parity\"} -1"),
      std::string::npos);
  // Every line is a comment or `name{labels} value` / `name value`.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);  // Text ends with a newline.
    const std::string line = text.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    pos = eol + 1;
  }
#endif
}

TEST(Exposition, MonitorsToJsonNestsSnapshots) {
  MonitorGuard guard;
  obs::GetMonitor("monitor_test/json_a", MonitorOptions{}).Reset();
  const std::string json = obs::MonitorsToJson();
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(json, "{}");
#else
  EXPECT_NE(json.find("\"monitor_test/json_a\""), std::string::npos);
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
#endif
}

TEST(Exposition, WriteTextFileRoundTrips) {
  const std::string path = "monitor_test_artifact.txt";
  ASSERT_TRUE(obs::WriteTextFile(path, "hello\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  const size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, got), "hello\n");
  EXPECT_FALSE(obs::WriteTextFile("no_such_dir/x/y.txt", "z").ok());
}

TEST(MonitorRunReport, CarriesFairnessTelemetry) {
  MonitorGuard guard;
  ApproachDescriptor desc;
  desc.citation = "[00]";
  desc.name = "monitor_test probe";
  desc.explanation_type = "Probe";
  desc.runner = [](const RunContext&) { return std::string("ok"); };
  const RunContext ctx = RunContext::Make(99);
  const obs::RunReport report = obs::RunWithReport(desc, ctx);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"fairness_telemetry\""), std::string::npos);
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(report.fairness_telemetry, "{}");
#else
  // The telemetry section holds the credit fixture's stream: per-group
  // aggregates plus a fixture-sized window.
  EXPECT_NE(report.fairness_telemetry.find("\"groups\""),
            std::string::npos);
  EXPECT_NE(report.fairness_telemetry.find("\"window\""),
            std::string::npos);
  EXPECT_NE(report.fairness_telemetry.find("\"events_processed\": 900"),
            std::string::npos);
  // Monitoring state was restored (MonitorGuard set it to disabled).
  EXPECT_FALSE(obs::MonitoringEnabled());
  // Same fixture, same stream: the telemetry is reproducible.
  EXPECT_EQ(report.fairness_telemetry,
            obs::RunWithReport(desc, ctx).fairness_telemetry);
#endif
}

}  // namespace
}  // namespace xfair
