// Tests for src/obs: counter/histogram semantics, span recording and
// deterministic flush order, Chrome-trace/JSON export, stage aggregation,
// the bit-identity guarantee (tracing on vs off), and RunReport audit
// records.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/model/logistic_regression.h"
#include "src/obs/obs.h"
#include "src/obs/run_report.h"
#include "src/unfair/fairness_shap.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

using obs::AggregateStages;
using obs::FlushSpans;
using obs::GetCounter;
using obs::GetHistogram;
using obs::SetTracingEnabled;
using obs::Span;
using obs::SpanRecord;
using obs::StageStat;

/// Restores the disabled-tracing default and drains leftover spans when a
/// test exits, so span tests cannot leak state into each other.
struct TracingGuard {
  TracingGuard() {
    SetTracingEnabled(false);
    FlushSpans();
  }
  ~TracingGuard() {
    SetTracingEnabled(false);
    FlushSpans();
  }
};

TEST(Counters, InternedByNameAndMonotonic) {
  obs::Counter& a = GetCounter("obs_test/interned");
  obs::Counter& b = GetCounter("obs_test/interned");
  EXPECT_EQ(&a, &b);
  const uint64_t before = a.value();
  a.Add();
  a.Add(41);
  EXPECT_EQ(b.value(), before + 42);
}

TEST(Counters, ConcurrentIncrementsAllLand) {
  obs::Counter& c = GetCounter("obs_test/concurrent");
  c.Reset();
  ParallelFor(0, size_t{1000}, [&](size_t) { c.Add(3); });
  EXPECT_EQ(c.value(), 3000u);
}

TEST(Counters, MacroCompilesAndCounts) {
  obs::Counter& c = GetCounter("obs_test/macro");
  const uint64_t before = c.value();
  for (int i = 0; i < 5; ++i) {
    XFAIR_COUNTER_ADD("obs_test/macro", 2);
  }
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(c.value(), before);
#else
  EXPECT_EQ(c.value(), before + 10);
#endif
}

TEST(Histograms, PowerOfTwoBuckets) {
  obs::Histogram& h = GetHistogram("obs_test/hist");
  h.Reset();
  h.Observe(0);   // bucket 0
  h.Observe(1);   // bit width 1
  h.Observe(7);   // bit width 3
  h.Observe(8);   // bit width 4
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  const auto buckets = h.BucketCounts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(buckets[4], 1u);
  EXPECT_EQ(buckets[2], 0u);
}

TEST(Histograms, QuantilesInterpolateWithinBuckets) {
  obs::Histogram& h = GetHistogram("obs_test/quantiles");
  h.Reset();
  // Empty histogram: sentinel 0.
  {
    const auto snaps = obs::SnapshotHistograms();
    for (const auto& s : snaps) {
      if (s.name != "obs_test/quantiles") continue;
      EXPECT_EQ(obs::HistogramQuantile(s, 0.5), 0.0);
    }
  }
  // 100 observations of 1 land in bucket 1, which spans [1, 2): the
  // median interpolates to the bucket midpoint.
  for (int i = 0; i < 100; ++i) h.Observe(1);
  // 100 observations of 12 land in bucket 4, [8, 16).
  for (int i = 0; i < 100; ++i) h.Observe(12);
  for (const auto& s : obs::SnapshotHistograms()) {
    if (s.name != "obs_test/quantiles") continue;
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 0.25), 1.5);
    // Rank 100 is the last observation of bucket 1: right bucket edge.
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 0.75), 12.0);
    // q clamps to [0, 1]; q = 1 is the top occupied bucket's edge.
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 1.0), 16.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 2.0), 16.0);
    EXPECT_GE(obs::HistogramQuantile(s, 0.0), 0.0);
  }
  // A zero-valued observation resolves to bucket 0, exactly 0.
  h.Reset();
  h.Observe(0);
  for (const auto& s : obs::SnapshotHistograms()) {
    if (s.name != "obs_test/quantiles") continue;
    EXPECT_EQ(obs::HistogramQuantile(s, 0.5), 0.0);
  }
}

TEST(Export, CountersToJsonIncludesHistogramQuantiles) {
  obs::Histogram& h = GetHistogram("obs_test/json_quantiles");
  h.Reset();
  for (int i = 0; i < 8; ++i) h.Observe(4);
  const std::string json = obs::CountersToJson();
  const size_t at = json.find("\"obs_test/json_quantiles\"");
  ASSERT_NE(at, std::string::npos);
  const std::string entry = json.substr(at, 200);
  EXPECT_NE(entry.find("\"p50\":"), std::string::npos);
  EXPECT_NE(entry.find("\"p95\":"), std::string::npos);
  EXPECT_NE(entry.find("\"p99\":"), std::string::npos);
  EXPECT_NE(entry.find("\"count\": 8"), std::string::npos);
}

TEST(Counters, SnapshotsAreSortedByName) {
  GetCounter("obs_test/zz");
  GetCounter("obs_test/aa");
  const auto snaps = obs::SnapshotCounters();
  ASSERT_GE(snaps.size(), 2u);
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_LT(snaps[i - 1].name, snaps[i].name);
  }
}

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  TracingGuard guard;
  { Span s("obs_test/ignored"); }
  EXPECT_TRUE(FlushSpans().empty());
}

TEST(Tracer, NestedSpansRecordParentAndDepth) {
  TracingGuard guard;
  SetTracingEnabled(true);
  {
    Span outer("obs_test/outer");
    { Span inner("obs_test/inner"); }
    { Span inner2("obs_test/inner"); }
  }
  SetTracingEnabled(false);
  const auto spans = FlushSpans();
  ASSERT_EQ(spans.size(), 3u);
  // Deterministic order: per-thread ids ascend in open order.
  EXPECT_STREQ(spans[0].name, "obs_test/outer");
  EXPECT_STREQ(spans[1].name, "obs_test/inner");
  EXPECT_STREQ(spans[2].name, "obs_test/inner");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[2].parent_id, spans[0].id);
  for (const auto& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
  }
  // Children close before the parent.
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[2].end_ns);
}

TEST(Tracer, FlushDrainsOnce) {
  TracingGuard guard;
  SetTracingEnabled(true);
  { Span s("obs_test/drain"); }
  SetTracingEnabled(false);
  EXPECT_EQ(FlushSpans().size(), 1u);
  EXPECT_TRUE(FlushSpans().empty());
}

TEST(Tracer, InstrumentedLibraryEmitsSpansWhenEnabled) {
  TracingGuard guard;
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  const Dataset data = CreditGen(cfg).Generate(120, 77);
  SetTracingEnabled(true);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  SetTracingEnabled(false);
  const auto spans = FlushSpans();
  bool saw_fit = false;
  for (const auto& s : spans) {
    saw_fit |= std::string_view(s.name) == "model/fit/logistic_regression";
  }
#ifdef XFAIR_OBS_DISABLED
  EXPECT_TRUE(spans.empty());
#else
  EXPECT_TRUE(saw_fit);
#endif
}

TEST(Export, ChromeTraceJsonShape) {
  TracingGuard guard;
  SetTracingEnabled(true);
  {
    Span outer("obs_test/chrome_outer");
    Span inner("obs_test/chrome_inner");
  }
  SetTracingEnabled(false);
  const auto spans = FlushSpans();
  const std::string json = obs::SpansToChromeTraceJson(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("obs_test/chrome_outer"), std::string::npos);
  EXPECT_NE(json.find("obs_test/chrome_inner"), std::string::npos);

  const std::string path = "/tmp/xfair_obs_trace_test.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path, spans).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);
  std::remove(path.c_str());
}

TEST(Export, AggregateStagesComputesSelfTime) {
  // Hand-built spans: parent 10ms total with a 4ms same-thread child.
  std::vector<SpanRecord> spans(2);
  spans[0] = {"parent", 0, 10'000'000, 0, 0, 1, 0};
  spans[1] = {"child", 1'000'000, 5'000'000, 0, 1, 2, 1};
  const std::vector<StageStat> stages = AggregateStages(spans);
  ASSERT_EQ(stages.size(), 2u);  // Sorted: child, parent.
  EXPECT_EQ(stages[0].name, "child");
  EXPECT_EQ(stages[0].count, 1u);
  EXPECT_DOUBLE_EQ(stages[0].total_ms, 4.0);
  EXPECT_DOUBLE_EQ(stages[0].self_ms, 4.0);
  EXPECT_EQ(stages[1].name, "parent");
  EXPECT_DOUBLE_EQ(stages[1].total_ms, 10.0);
  EXPECT_DOUBLE_EQ(stages[1].self_ms, 6.0);
  const std::string json = obs::StagesToJson(stages);
  EXPECT_NE(json.find("\"name\": \"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"self_ms\""), std::string::npos);
}

TEST(Export, CountersToJsonIsWellFormedFragment) {
  GetCounter("obs_test/json_counter").Add(5);
  const std::string json = obs::CountersToJson();
  EXPECT_NE(json.find("obs_test/json_counter"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  const size_t last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
}

TEST(BitIdentity, TracingDoesNotPerturbResults) {
  // The core guarantee: spans and counters observe without participating.
  // The same workload with tracing off and on must produce bit-identical
  // numeric output.
  TracingGuard guard;
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  const Dataset data = CreditGen(cfg).Generate(300, 909);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());

  auto run = [&] { return ExplainParityWithShapley(model, data, {}); };
  SetTracingEnabled(false);
  const FairnessShapReport off = run();
  SetTracingEnabled(true);
  const FairnessShapReport on = run();
  SetTracingEnabled(false);
  FlushSpans();

  ASSERT_EQ(off.contributions.size(), on.contributions.size());
  for (size_t i = 0; i < off.contributions.size(); ++i) {
    EXPECT_EQ(off.contributions[i], on.contributions[i]) << "feature " << i;
  }
  EXPECT_EQ(off.baseline_gap, on.baseline_gap);
  EXPECT_EQ(off.full_gap, on.full_gap);
  EXPECT_EQ(off.ranked_features, on.ranked_features);
}

TEST(RunReport, CapturesProvenanceStagesAndCounterDeltas) {
  TracingGuard guard;
  ApproachDescriptor desc;
  desc.citation = "[00]";
  desc.name = "obs_test probe";
  desc.explanation_type = "Probe";
  desc.runner = [](const RunContext& ctx) {
    Span s("obs_test/probe_stage");
    GetCounter("obs_test/probe_counter").Add(7);
    LogisticRegression lr;
    XFAIR_CHECK(lr.Fit(ctx.credit).ok());
    return std::string("probe ok");
  };
  const RunContext ctx = RunContext::Make(4242);
  const obs::RunReport report = obs::RunWithReport(desc, ctx);

  EXPECT_EQ(report.method, "obs_test probe");
  EXPECT_EQ(report.citation, "[00]");
  EXPECT_EQ(report.summary, "probe ok");
  EXPECT_EQ(report.seed, 4242u);
  EXPECT_FALSE(report.dataset_fingerprint.empty());
  EXPECT_GE(report.wall_ms, 0.0);
  EXPECT_FALSE(report.config.empty());

  bool saw_stage = false;
  for (const auto& st : report.stages) {
    saw_stage |= st.name == "obs_test/probe_stage";
  }
  bool saw_counter = false;
  for (const auto& cd : report.counter_deltas) {
    if (cd.name == "obs_test/probe_counter") {
      saw_counter = true;
      EXPECT_EQ(cd.value, 7u);
    }
  }
#ifndef XFAIR_OBS_DISABLED
  EXPECT_TRUE(saw_stage);
#endif
  EXPECT_TRUE(saw_counter);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"method\": \"obs_test probe\""), std::string::npos);
  EXPECT_NE(json.find("\"dataset_fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);

  // Same seed, same data: the fingerprint is reproducible.
  EXPECT_EQ(report.dataset_fingerprint,
            obs::RunWithReport(desc, ctx).dataset_fingerprint);

  // Tracing state was restored.
  EXPECT_FALSE(obs::TracingEnabled());
}

TEST(RunReport, FingerprintDistinguishesDatasets) {
  const Dataset a = CreditGen().Generate(50, 1);
  const Dataset b = CreditGen().Generate(50, 2);
  EXPECT_NE(obs::DatasetFingerprint(a), obs::DatasetFingerprint(b));
  EXPECT_EQ(obs::DatasetFingerprint(a), obs::DatasetFingerprint(a));
}

}  // namespace
}  // namespace xfair
