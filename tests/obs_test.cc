// Tests for src/obs: counter/histogram semantics, span recording and
// deterministic flush order, Chrome-trace/JSON export, stage aggregation,
// the bit-identity guarantee (tracing on vs off), and RunReport audit
// records.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/model/logistic_regression.h"
#include "src/obs/obs.h"
#include "src/obs/run_report.h"
#include "src/unfair/fairness_shap.h"
#include "src/util/parallel.h"

namespace xfair {
namespace {

using obs::AggregateStages;
using obs::FlushSpans;
using obs::GetCounter;
using obs::GetHistogram;
using obs::SetTracingEnabled;
using obs::Span;
using obs::SpanRecord;
using obs::StageStat;

/// Restores the disabled-tracing default and drains leftover spans when a
/// test exits, so span tests cannot leak state into each other.
struct TracingGuard {
  TracingGuard() {
    SetTracingEnabled(false);
    FlushSpans();
  }
  ~TracingGuard() {
    SetTracingEnabled(false);
    FlushSpans();
  }
};

TEST(Counters, InternedByNameAndMonotonic) {
  obs::Counter& a = GetCounter("obs_test/interned");
  obs::Counter& b = GetCounter("obs_test/interned");
  EXPECT_EQ(&a, &b);
  const uint64_t before = a.value();
  a.Add();
  a.Add(41);
  EXPECT_EQ(b.value(), before + 42);
}

TEST(Counters, ConcurrentIncrementsAllLand) {
  obs::Counter& c = GetCounter("obs_test/concurrent");
  c.Reset();
  ParallelFor(0, size_t{1000}, [&](size_t) { c.Add(3); });
  EXPECT_EQ(c.value(), 3000u);
}

TEST(Counters, MacroCompilesAndCounts) {
  obs::Counter& c = GetCounter("obs_test/macro");
  const uint64_t before = c.value();
  for (int i = 0; i < 5; ++i) {
    XFAIR_COUNTER_ADD("obs_test/macro", 2);
  }
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(c.value(), before);
#else
  EXPECT_EQ(c.value(), before + 10);
#endif
}

TEST(Histograms, LogLinearBucketMath) {
  using obs::Histogram;
  // Values below 128 are exact: one bucket per value (index == value up
  // to 127, the zero-shift octave included).
  for (uint64_t v : {0ull, 1ull, 63ull, 64ull, 100ull, 127ull}) {
    const size_t b = Histogram::BucketIndex(v);
    EXPECT_EQ(b, static_cast<size_t>(v));
    EXPECT_EQ(Histogram::BucketLow(b), v);
    EXPECT_EQ(Histogram::BucketWidth(b), 1u);
  }
  // First lossy octave: [128, 256) in width-2 buckets.
  EXPECT_EQ(Histogram::BucketIndex(128), Histogram::BucketIndex(129));
  EXPECT_NE(Histogram::BucketIndex(129), Histogram::BucketIndex(130));
  EXPECT_EQ(Histogram::BucketLow(Histogram::BucketIndex(128)), 128u);
  EXPECT_EQ(Histogram::BucketWidth(Histogram::BucketIndex(128)), 2u);
  // Every value lands inside its bucket, and the bucket width never
  // exceeds low/64 — the ~1.6% relative-error guarantee.
  for (uint64_t v : {uint64_t{200}, uint64_t{1} << 20,
                     (uint64_t{1} << 33) + 12345, uint64_t{1} << 40,
                     ~uint64_t{0}}) {
    const size_t b = Histogram::BucketIndex(v);
    ASSERT_LT(b, Histogram::kBuckets) << v;
    EXPECT_LE(Histogram::BucketLow(b), v) << v;
    EXPECT_LE(v - Histogram::BucketLow(b), Histogram::BucketWidth(b) - 1)
        << v;
    EXPECT_LE(Histogram::BucketWidth(b) * 64, Histogram::BucketLow(b)) << v;
  }
}

TEST(Histograms, LogLinearObserveAndLegacyShim) {
  obs::Histogram& h = GetHistogram("obs_test/hist");
  h.Reset();
  h.Observe(0);
  h.Observe(1);
  h.Observe(7);
  h.Observe(8);
  h.Observe(200);  // Lossy range: bucket [200, 202).
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 216u);
  EXPECT_DOUBLE_EQ(h.mean(), 43.2);
  const auto buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), obs::Histogram::kBuckets);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[7], 1u);
  EXPECT_EQ(buckets[8], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[obs::Histogram::BucketIndex(200)], 1u);

  // The deprecation shim folds back to the pre-PR-10 power-of-two
  // layout: bucket i counted values of bit width i.
  for (const auto& s : obs::SnapshotHistograms()) {
    if (s.name != "obs_test/hist") continue;
    const std::array<uint64_t, 65> legacy = obs::LegacyPowerOfTwoBuckets(s);
    EXPECT_EQ(legacy[0], 1u);  // 0
    EXPECT_EQ(legacy[1], 1u);  // 1
    EXPECT_EQ(legacy[3], 1u);  // 7
    EXPECT_EQ(legacy[4], 1u);  // 8
    EXPECT_EQ(legacy[8], 1u);  // 200 has bit width 8
    uint64_t total = 0;
    for (uint64_t c : legacy) total += c;
    EXPECT_EQ(total, s.count);
  }
}

TEST(Histograms, QuantilesExactBelow128AndInterpolatedAbove) {
  obs::Histogram& h = GetHistogram("obs_test/quantiles");
  h.Reset();
  // Empty histogram: sentinel 0.
  {
    const auto snaps = obs::SnapshotHistograms();
    for (const auto& s : snaps) {
      if (s.name != "obs_test/quantiles") continue;
      EXPECT_EQ(obs::HistogramQuantile(s, 0.5), 0.0);
    }
  }
  // 100 observations of 1 and 100 of 12: both exact buckets, so the
  // quantiles return the recorded values themselves (the old
  // power-of-two layout could only bracket 12 inside [8, 16)).
  for (int i = 0; i < 100; ++i) h.Observe(1);
  for (int i = 0; i < 100; ++i) h.Observe(12);
  for (const auto& s : obs::SnapshotHistograms()) {
    if (s.name != "obs_test/quantiles") continue;
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 0.25), 1.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 0.75), 12.0);
    // q clamps to [0, 1]; exact buckets stay exact at the extremes.
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 1.0), 12.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(s, 2.0), 12.0);
    EXPECT_GE(obs::HistogramQuantile(s, 0.0), 0.0);
  }
  // Above 128 the estimate interpolates inside the bucket: 1000 lives
  // in [1000, 1008), so the median lands within that window.
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Observe(1000);
  for (const auto& s : obs::SnapshotHistograms()) {
    if (s.name != "obs_test/quantiles") continue;
    const double p50 = obs::HistogramQuantile(s, 0.5);
    EXPECT_GE(p50, 1000.0);
    EXPECT_LE(p50, 1008.0);
  }
}

TEST(Histograms, QuantileErrorBoundVsExactSortedQuantiles) {
  // The log-linear resolution promise, end to end: against the exact
  // sorted-array quantile at the same rank, the histogram estimate is
  // within 1/64 relative error at every probed q (exact below 128).
  obs::Histogram& h = GetHistogram("obs_test/error_bound");
  h.Reset();
  std::vector<uint64_t> values;
  uint64_t state = 0x9e3779b97f4a7c15ull;  // Deterministic xorshift mix.
  for (int i = 0; i < 5000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    // Spread across six orders of magnitude, as latencies do.
    const uint64_t v = state % (uint64_t{1} << (8 + i % 24));
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const auto& s : obs::SnapshotHistograms()) {
    if (s.name != "obs_test/error_bound") continue;
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
      const double target = q * static_cast<double>(values.size());
      const size_t rank = std::min(
          values.size() - 1,
          static_cast<size_t>(std::max(0.0, std::ceil(target) - 1.0)));
      const double exact = static_cast<double>(values[rank]);
      const double est = obs::HistogramQuantile(s, q);
      // est and exact share a bucket; |est - exact| <= width <= low/64.
      EXPECT_LE(std::fabs(est - exact), exact / 64.0 + 1e-9)
          << "q=" << q << " exact=" << exact << " est=" << est;
    }
  }
}

TEST(Export, CountersToJsonIncludesHistogramQuantiles) {
  obs::Histogram& h = GetHistogram("obs_test/json_quantiles");
  h.Reset();
  for (int i = 0; i < 8; ++i) h.Observe(4);
  const std::string json = obs::CountersToJson();
  const size_t at = json.find("\"obs_test/json_quantiles\"");
  ASSERT_NE(at, std::string::npos);
  const std::string entry = json.substr(at, 240);
  EXPECT_NE(entry.find("\"p50\":"), std::string::npos);
  EXPECT_NE(entry.find("\"p95\":"), std::string::npos);
  EXPECT_NE(entry.find("\"p99\":"), std::string::npos);
  EXPECT_NE(entry.find("\"p999\":"), std::string::npos);
  EXPECT_NE(entry.find("\"count\": 8"), std::string::npos);
  // 4 is an exact bucket under the log-linear layout: p50 is 4 itself.
  EXPECT_NE(entry.find("\"p50\": 4.000"), std::string::npos);
}

TEST(Counters, SnapshotsAreSortedByName) {
  GetCounter("obs_test/zz");
  GetCounter("obs_test/aa");
  const auto snaps = obs::SnapshotCounters();
  ASSERT_GE(snaps.size(), 2u);
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_LT(snaps[i - 1].name, snaps[i].name);
  }
}

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  TracingGuard guard;
  { Span s("obs_test/ignored"); }
  EXPECT_TRUE(FlushSpans().empty());
}

TEST(Tracer, NestedSpansRecordParentAndDepth) {
  TracingGuard guard;
  SetTracingEnabled(true);
  {
    Span outer("obs_test/outer");
    { Span inner("obs_test/inner"); }
    { Span inner2("obs_test/inner"); }
  }
  SetTracingEnabled(false);
  const auto spans = FlushSpans();
  ASSERT_EQ(spans.size(), 3u);
  // Deterministic order: per-thread ids ascend in open order.
  EXPECT_STREQ(spans[0].name, "obs_test/outer");
  EXPECT_STREQ(spans[1].name, "obs_test/inner");
  EXPECT_STREQ(spans[2].name, "obs_test/inner");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[2].parent_id, spans[0].id);
  for (const auto& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
  }
  // Children close before the parent.
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[2].end_ns);
}

TEST(Tracer, FlushDrainsOnce) {
  TracingGuard guard;
  SetTracingEnabled(true);
  { Span s("obs_test/drain"); }
  SetTracingEnabled(false);
  EXPECT_EQ(FlushSpans().size(), 1u);
  EXPECT_TRUE(FlushSpans().empty());
}

TEST(Tracer, InstrumentedLibraryEmitsSpansWhenEnabled) {
  TracingGuard guard;
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  const Dataset data = CreditGen(cfg).Generate(120, 77);
  SetTracingEnabled(true);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  SetTracingEnabled(false);
  const auto spans = FlushSpans();
  bool saw_fit = false;
  for (const auto& s : spans) {
    saw_fit |= std::string_view(s.name) == "model/fit/logistic_regression";
  }
#ifdef XFAIR_OBS_DISABLED
  EXPECT_TRUE(spans.empty());
#else
  EXPECT_TRUE(saw_fit);
#endif
}

TEST(Export, ChromeTraceJsonShape) {
  TracingGuard guard;
  SetTracingEnabled(true);
  {
    Span outer("obs_test/chrome_outer");
    Span inner("obs_test/chrome_inner");
  }
  SetTracingEnabled(false);
  const auto spans = FlushSpans();
  const std::string json = obs::SpansToChromeTraceJson(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("obs_test/chrome_outer"), std::string::npos);
  EXPECT_NE(json.find("obs_test/chrome_inner"), std::string::npos);

  const std::string path = "/tmp/xfair_obs_trace_test.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path, spans).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);
  std::remove(path.c_str());
}

TEST(Export, AggregateStagesComputesSelfTime) {
  // Hand-built spans: parent 10ms total with a 4ms same-thread child.
  std::vector<SpanRecord> spans(2);
  spans[0] = {"parent", 0, 10'000'000, 0, 0, 1, 0};
  spans[1] = {"child", 1'000'000, 5'000'000, 0, 1, 2, 1};
  const std::vector<StageStat> stages = AggregateStages(spans);
  ASSERT_EQ(stages.size(), 2u);  // Sorted: child, parent.
  EXPECT_EQ(stages[0].name, "child");
  EXPECT_EQ(stages[0].count, 1u);
  EXPECT_DOUBLE_EQ(stages[0].total_ms, 4.0);
  EXPECT_DOUBLE_EQ(stages[0].self_ms, 4.0);
  EXPECT_EQ(stages[1].name, "parent");
  EXPECT_DOUBLE_EQ(stages[1].total_ms, 10.0);
  EXPECT_DOUBLE_EQ(stages[1].self_ms, 6.0);
  const std::string json = obs::StagesToJson(stages);
  EXPECT_NE(json.find("\"name\": \"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"self_ms\""), std::string::npos);
}

TEST(Export, CountersToJsonIsWellFormedFragment) {
  GetCounter("obs_test/json_counter").Add(5);
  const std::string json = obs::CountersToJson();
  EXPECT_NE(json.find("obs_test/json_counter"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  const size_t last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
}

TEST(BitIdentity, TracingDoesNotPerturbResults) {
  // The core guarantee: spans and counters observe without participating.
  // The same workload with tracing off and on must produce bit-identical
  // numeric output.
  TracingGuard guard;
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  const Dataset data = CreditGen(cfg).Generate(300, 909);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());

  auto run = [&] { return ExplainParityWithShapley(model, data, {}); };
  SetTracingEnabled(false);
  const FairnessShapReport off = run();
  SetTracingEnabled(true);
  const FairnessShapReport on = run();
  SetTracingEnabled(false);
  FlushSpans();

  ASSERT_EQ(off.contributions.size(), on.contributions.size());
  for (size_t i = 0; i < off.contributions.size(); ++i) {
    EXPECT_EQ(off.contributions[i], on.contributions[i]) << "feature " << i;
  }
  EXPECT_EQ(off.baseline_gap, on.baseline_gap);
  EXPECT_EQ(off.full_gap, on.full_gap);
  EXPECT_EQ(off.ranked_features, on.ranked_features);
}

TEST(RunReport, CapturesProvenanceStagesAndCounterDeltas) {
  TracingGuard guard;
  ApproachDescriptor desc;
  desc.citation = "[00]";
  desc.name = "obs_test probe";
  desc.explanation_type = "Probe";
  desc.runner = [](const RunContext& ctx) {
    Span s("obs_test/probe_stage");
    GetCounter("obs_test/probe_counter").Add(7);
    LogisticRegression lr;
    XFAIR_CHECK(lr.Fit(ctx.credit).ok());
    return std::string("probe ok");
  };
  const RunContext ctx = RunContext::Make(4242);
  const obs::RunReport report = obs::RunWithReport(desc, ctx);

  EXPECT_EQ(report.method, "obs_test probe");
  EXPECT_EQ(report.citation, "[00]");
  EXPECT_EQ(report.summary, "probe ok");
  EXPECT_EQ(report.seed, 4242u);
  EXPECT_FALSE(report.dataset_fingerprint.empty());
  EXPECT_GE(report.wall_ms, 0.0);
  EXPECT_FALSE(report.config.empty());

  bool saw_stage = false;
  for (const auto& st : report.stages) {
    saw_stage |= st.name == "obs_test/probe_stage";
  }
  bool saw_counter = false;
  for (const auto& cd : report.counter_deltas) {
    if (cd.name == "obs_test/probe_counter") {
      saw_counter = true;
      EXPECT_EQ(cd.value, 7u);
    }
  }
#ifndef XFAIR_OBS_DISABLED
  EXPECT_TRUE(saw_stage);
#endif
  EXPECT_TRUE(saw_counter);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"method\": \"obs_test probe\""), std::string::npos);
  EXPECT_NE(json.find("\"dataset_fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);

  // Same seed, same data: the fingerprint is reproducible.
  EXPECT_EQ(report.dataset_fingerprint,
            obs::RunWithReport(desc, ctx).dataset_fingerprint);

  // Tracing state was restored.
  EXPECT_FALSE(obs::TracingEnabled());
}

TEST(RunReport, FingerprintDistinguishesDatasets) {
  const Dataset a = CreditGen().Generate(50, 1);
  const Dataset b = CreditGen().Generate(50, 2);
  EXPECT_NE(obs::DatasetFingerprint(a), obs::DatasetFingerprint(b));
  EXPECT_EQ(obs::DatasetFingerprint(a), obs::DatasetFingerprint(a));
}

}  // namespace
}  // namespace xfair
