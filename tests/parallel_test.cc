// Tests for the deterministic parallel runtime (src/util/parallel.h) and
// the guarantees built on it: exactly-once loop coverage, bit-for-bit
// reductions, thread-count-independent Shapley / Gopher / forest /
// counterfactual results, and batched inference consistency.

#include "src/util/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/data/generators.h"
#include "src/explain/counterfactual.h"
#include "src/explain/shap.h"
#include "src/explain/tree_shap.h"
#include "src/model/decision_tree.h"
#include "src/model/gbm.h"
#include "src/model/knn.h"
#include "src/model/logistic_regression.h"
#include "src/model/random_forest.h"
#include "src/model/softmax_regression.h"
#include "src/obs/obs.h"
#include "src/unfair/fairness_shap.h"
#include "src/unfair/gopher.h"
#include "src/unfair/slice_search.h"
#include "src/util/kdtree.h"
#include "src/util/rng.h"

namespace xfair {
namespace {

/// Restores the pool to its environment-default size when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

/// Runs `fn` under each thread count and checks all results against the
/// first (serial) run with an exact-equality comparator.
template <typename T, typename Fn>
void ExpectSameAcrossThreadCounts(Fn fn,
                                  const std::function<void(const T&, const T&)>&
                                      expect_equal) {
  ThreadGuard guard;
  SetParallelThreads(1);
  const T serial = fn();
  for (size_t threads : {2, 8}) {
    SetParallelThreads(threads);
    const T parallel = fn();
    expect_equal(serial, parallel);
  }
}

TEST(DeterministicChunks, PartitionsRangeExactly) {
  for (size_t n : {0u, 1u, 5u, 64u, 65u, 1000u}) {
    const auto chunks = DeterministicChunks(10, 10 + n);
    size_t covered = 0;
    size_t expect_begin = 10;
    for (const auto& chunk : chunks) {
      EXPECT_EQ(chunk.begin, expect_begin);
      EXPECT_LT(chunk.begin, chunk.end);
      covered += chunk.end - chunk.begin;
      expect_begin = chunk.end;
    }
    EXPECT_EQ(covered, n);
    if (n > 0) {
      EXPECT_EQ(chunks.back().end, 10 + n);
    }
    EXPECT_LE(chunks.size(), kMaxChunks);
  }
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadGuard guard;
  for (size_t threads : {1u, 2u, 8u}) {
    SetParallelThreads(threads);
    for (size_t n : {0u, 1u, 7u, 64u, 513u}) {
      auto counts = std::make_unique<std::atomic<int>[]>(n);
      for (size_t i = 0; i < n; ++i) counts[i] = 0;
      ParallelFor(100, 100 + n, [&](size_t i) {
        ASSERT_GE(i, 100u);
        ASSERT_LT(i, 100 + n);
        counts[i - 100].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(counts[i].load(), 1) << "index " << i << " of " << n;
      }
    }
  }
}

TEST(ParallelReduce, MatchesSerialSumBitForBit) {
  auto term = [](size_t i) {
    return std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (1.0 + i);
  };
  ExpectSameAcrossThreadCounts<double>(
      [&] { return ParallelReduceSum(0, 3001, term); },
      [](const double& a, const double& b) { EXPECT_EQ(a, b); });
}

TEST(ParallelReduce, EmptyRangeIsZero) {
  EXPECT_EQ(ParallelReduceSum(5, 5, [](size_t) { return 1.0; }), 0.0);
}

TEST(RngFork, IsStableAndDoesNotAdvanceParent) {
  Rng a(42);
  Rng fork_early = a.Fork(3);
  const uint64_t next_after_fork = a.Next();
  Rng b(42);
  const uint64_t next_without_fork = b.Next();
  EXPECT_EQ(next_after_fork, next_without_fork)
      << "Fork must not advance the parent stream";
  Rng c(42);
  Rng fork_again = c.Fork(3);
  EXPECT_EQ(fork_early.Next(), fork_again.Next());
}

TEST(RngFork, DistinctStreamsDiffer) {
  Rng root(7);
  Rng s0 = root.Fork(0);
  Rng s1 = root.Fork(1);
  bool any_different = false;
  for (int i = 0; i < 8; ++i) any_different |= (s0.Next() != s1.Next());
  EXPECT_TRUE(any_different);
}

CoalitionValue RandomGame(Vector* table, size_t d, uint64_t seed) {
  Rng rng(seed);
  table->assign(size_t{1} << d, 0.0);
  for (double& v : *table) v = rng.Uniform(-1, 1);
  return [table, d](const std::vector<bool>& mask) {
    size_t s = 0;
    for (size_t i = 0; i < d; ++i)
      if (mask[i]) s |= (size_t{1} << i);
    return (*table)[s];
  };
}

TEST(ParallelShapley, ExactIsThreadCountInvariant) {
  Vector table;
  CoalitionValue v = RandomGame(&table, 9, 91);
  ExpectSameAcrossThreadCounts<Vector>(
      [&] { return ExactShapley(v, 9); },
      [](const Vector& a, const Vector& b) {
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
      });
}

TEST(ParallelShapley, SampledIsThreadCountInvariant) {
  Vector table;
  CoalitionValue v = RandomGame(&table, 12, 92);
  ExpectSameAcrossThreadCounts<Vector>(
      [&] {
        Rng rng(93);
        return SampledShapley(v, 12, 201, &rng);
      },
      [](const Vector& a, const Vector& b) {
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
      });
}

TEST(SampledShapley, OddPermutationBudgetIsExact) {
  // Regression: the antithetic pairing used to walk permutations in
  // strict pairs, overshooting an odd budget by one; the final pass must
  // be forward-only so the accounting matches the request.
  Vector table;
  CoalitionValue v = RandomGame(&table, 6, 94);
  for (size_t permutations : {1u, 2u, 7u, 8u, 201u}) {
    Rng rng(95);
    SampledShapleyInfo info;
    const Vector phi = SampledShapley(v, 6, permutations, &rng, &info);
    EXPECT_EQ(info.permutations_used, permutations);
    EXPECT_GT(info.unique_coalitions, 0u);
    // Efficiency holds exactly per walked permutation, so a correct
    // denominator makes the attributions sum to v(full) - v(empty).
    double sum = 0.0;
    for (double p : phi) sum += p;
    EXPECT_NEAR(sum, table[table.size() - 1] - table[0], 1e-9)
        << "permutations=" << permutations;
  }
}

TEST(CoalitionCache, NeverEvaluatesTwice) {
  size_t calls = 0;
  CoalitionValue counted = [&calls](const std::vector<bool>& mask) {
    ++calls;
    double acc = 0.0;
    for (size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) acc += static_cast<double>(i + 1);
    return acc;
  };
  CoalitionCache cache(counted, 5);
  std::vector<bool> a{true, false, true, false, false};
  std::vector<bool> b{false, true, false, false, true};
  EXPECT_EQ(cache(a), 4.0);
  EXPECT_EQ(cache(a), 4.0);
  EXPECT_EQ(cache(b), 7.0);
  EXPECT_EQ(cache(a), 4.0);
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(cache.unique_coalitions(), 2u);
  EXPECT_EQ(cache.evaluations(), 2u);
}

TEST(ParallelUnfair, FairnessShapIsThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(400, 501);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  ExpectSameAcrossThreadCounts<FairnessShapReport>(
      [&] { return ExplainParityWithShapley(model, data, {}); },
      [](const FairnessShapReport& a, const FairnessShapReport& b) {
        ASSERT_EQ(a.contributions.size(), b.contributions.size());
        for (size_t i = 0; i < a.contributions.size(); ++i)
          EXPECT_EQ(a.contributions[i], b.contributions[i]);
        EXPECT_EQ(a.ranked_features, b.ranked_features);
        EXPECT_EQ(a.baseline_gap, b.baseline_gap);
        EXPECT_EQ(a.full_gap, b.full_gap);
      });
}

TEST(ParallelUnfair, GopherTopKIsThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(400, 502);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  GopherOptions opts;
  opts.top_k = 4;
  ExpectSameAcrossThreadCounts<GopherReport>(
      [&] {
        auto report = ExplainUnfairnessByPatterns(model, data, opts);
        XFAIR_CHECK(report.ok());
        return *report;
      },
      [](const GopherReport& a, const GopherReport& b) {
        ASSERT_EQ(a.patterns.size(), b.patterns.size());
        EXPECT_EQ(a.patterns_examined, b.patterns_examined);
        for (size_t i = 0; i < a.patterns.size(); ++i) {
          EXPECT_EQ(a.patterns[i].description, b.patterns[i].description);
          EXPECT_EQ(a.patterns[i].support, b.patterns[i].support);
          EXPECT_EQ(a.patterns[i].estimated_gap_change,
                    b.patterns[i].estimated_gap_change);
          EXPECT_EQ(a.patterns[i].verified, b.patterns[i].verified);
          EXPECT_EQ(a.patterns[i].verified_gap_change,
                    b.patterns[i].verified_gap_change);
        }
      });
}

TEST(ParallelUnfair, GopherDepth3LatticeEngineIsThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(400, 509);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  GopherOptions opts;  // Bitset engine + optimistic prune, both defaults.
  opts.max_conditions = 3;
  opts.top_k = 3;
  ExpectSameAcrossThreadCounts<GopherReport>(
      [&] {
        auto report = ExplainUnfairnessByPatterns(model, data, opts);
        XFAIR_CHECK(report.ok());
        return *report;
      },
      [](const GopherReport& a, const GopherReport& b) {
        ASSERT_EQ(a.patterns.size(), b.patterns.size());
        EXPECT_EQ(a.patterns_examined, b.patterns_examined);
        EXPECT_EQ(a.candidates_scored, b.candidates_scored);
        EXPECT_EQ(a.bound_pruned, b.bound_pruned);
        for (size_t i = 0; i < a.patterns.size(); ++i) {
          EXPECT_EQ(a.patterns[i].description, b.patterns[i].description);
          EXPECT_EQ(a.patterns[i].support, b.patterns[i].support);
          EXPECT_EQ(a.patterns[i].estimated_gap_change,
                    b.patterns[i].estimated_gap_change);
          EXPECT_EQ(a.patterns[i].verified_gap_change,
                    b.patterns[i].verified_gap_change);
        }
      });
}

TEST(ParallelUnfair, WorstSliceSearchIsThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(500, 510);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  for (const bool engine : {true, false}) {
    SliceSearchOptions opts;
    opts.use_bitset_engine = engine;
    ExpectSameAcrossThreadCounts<WorstSliceReport>(
        [&] { return WorstSliceSearch(model, data, opts); },
        [](const WorstSliceReport& a, const WorstSliceReport& b) {
          EXPECT_EQ(a.overall_metric, b.overall_metric);
          EXPECT_EQ(a.slices_examined, b.slices_examined);
          EXPECT_EQ(a.lattice_candidates, b.lattice_candidates);
          ASSERT_EQ(a.slices.size(), b.slices.size());
          for (size_t i = 0; i < a.slices.size(); ++i) {
            EXPECT_EQ(a.slices[i].description, b.slices[i].description);
            EXPECT_EQ(a.slices[i].support, b.slices[i].support);
            EXPECT_EQ(a.slices[i].hits, b.slices[i].hits);
            EXPECT_EQ(a.slices[i].relevant, b.slices[i].relevant);
            EXPECT_EQ(a.slices[i].metric_value, b.slices[i].metric_value);
          }
        });
  }
}

TEST(ParallelUnfair, FairnessShapTreeFastPathIsThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(400, 507);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  ExpectSameAcrossThreadCounts<FairnessShapReport>(
      [&] { return ExplainParityWithShapley(tree, data, {}); },
      [](const FairnessShapReport& a, const FairnessShapReport& b) {
        ASSERT_EQ(a.contributions.size(), b.contributions.size());
        for (size_t i = 0; i < a.contributions.size(); ++i)
          EXPECT_EQ(a.contributions[i], b.contributions[i]);
        EXPECT_EQ(a.ranked_features, b.ranked_features);
        EXPECT_EQ(a.baseline_gap, b.baseline_gap);
        EXPECT_EQ(a.full_gap, b.full_gap);
      });
}

TEST(ParallelUnfair, FairnessShapBatchSliceIsThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(500, 512);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(data).ok());
  std::vector<size_t> slice;
  for (size_t i = 0; i < data.size(); ++i)
    if (i % 5 != 2) slice.push_back(i);
  const auto compare = [](const FairnessShapReport& a,
                          const FairnessShapReport& b) {
    ASSERT_EQ(a.contributions.size(), b.contributions.size());
    for (size_t i = 0; i < a.contributions.size(); ++i)
      EXPECT_EQ(a.contributions[i], b.contributions[i]);
    EXPECT_EQ(a.ranked_features, b.ranked_features);
    EXPECT_EQ(a.baseline_gap, b.baseline_gap);
    EXPECT_EQ(a.full_gap, b.full_gap);
  };
  // Tree fast path: batched thresholded sweep over the slice.
  ExpectSameAcrossThreadCounts<FairnessShapReport>(
      [&] { return FairnessShapBatch(tree, data, slice, {}); }, compare);
  // Generic path: coalition-tiled mask-gap table.
  ExpectSameAcrossThreadCounts<FairnessShapReport>(
      [&] { return FairnessShapBatch(lr, data, slice, {}); }, compare);
}

TEST(ParallelExplain, ThresholdedSweepIsThreadCountInvariant) {
  Dataset data = CreditGen().Generate(600, 513);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  const size_t d = data.num_features();
  Vector z(d, 0.0);
  for (size_t i = 0; i < data.size(); ++i)
    for (size_t c = 0; c < d; ++c) z[c] += data.x().At(i, c);
  for (size_t c = 0; c < d; ++c) z[c] /= static_cast<double>(data.size());
  std::vector<size_t> rows(data.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Vector weights(rows.size());
  for (size_t i = 0; i < rows.size(); ++i)
    weights[i] = (data.group(i) == 0 ? 1.0 : -1.0) /
                 (1.0 + static_cast<double>(i % 5));
  ExpectSameAcrossThreadCounts<Vector>(
      [&] {
        Vector both = InterventionalTreeShapThresholded(
            tree, data.x(), rows, weights, z, tree.threshold());
        const Vector looped = InterventionalTreeShapThresholdedLooped(
            tree, data.x(), rows, weights, z, tree.threshold());
        both.insert(both.end(), looped.begin(), looped.end());
        return both;
      },
      [](const Vector& a, const Vector& b) {
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
      });
}

TEST(ParallelExplain, TreeShapIsThreadCountInvariant) {
  Dataset data = CreditGen().Generate(300, 508);
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 12;
  ASSERT_TRUE(forest.Fit(data, opts).ok());
  std::vector<size_t> keep;
  for (size_t i = 0; i < 40; ++i) keep.push_back(i);
  const Dataset background = data.Subset(keep);
  const Vector x = data.instance(120);
  ExpectSameAcrossThreadCounts<Vector>(
      [&] {
        // Dispatches to interventional TreeSHAP (reduction over
        // background rows) for tree models.
        Rng rng(509);
        Vector phi = ShapExplainInstance(forest, background, x, 50, &rng);
        const TreeShapExplanation pd = PathDependentTreeShap(forest, x);
        phi.insert(phi.end(), pd.phi.begin(), pd.phi.end());
        phi.push_back(pd.base_value);
        return phi;
      },
      [](const Vector& a, const Vector& b) {
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
      });
}

/// Flattens a batch explanation so the invariance harness can compare it
/// with one EXPECT_EQ per scalar.
Vector FlattenBatch(const TreeShapBatchExplanation& e) {
  Vector out;
  out.reserve(e.phi.rows() * e.phi.cols() + e.base_values.size());
  for (size_t i = 0; i < e.phi.rows(); ++i)
    for (size_t c = 0; c < e.phi.cols(); ++c) out.push_back(e.phi.At(i, c));
  out.insert(out.end(), e.base_values.begin(), e.base_values.end());
  return out;
}

TEST(ParallelExplain, TreeShapBatchIsThreadCountInvariant) {
  Dataset data = CreditGen().Generate(350, 511);
  RandomForest forest;
  RandomForestOptions fopts;
  fopts.num_trees = 10;
  ASSERT_TRUE(forest.Fit(data, fopts).ok());
  GradientBoostedTrees gbm;
  GbmOptions gopts;
  gopts.num_rounds = 15;
  ASSERT_TRUE(gbm.Fit(data, gopts).ok());
  std::vector<size_t> keep;
  for (size_t i = 0; i < 25; ++i) keep.push_back(i);
  const Matrix background = data.Subset(keep).x();
  ExpectSameAcrossThreadCounts<Vector>(
      [&] {
        Vector out = FlattenBatch(TreeShapBatch(forest, data.x()));
        const Vector margin =
            FlattenBatch(TreeShapBatchMargin(gbm, data.x()));
        const Vector iv = FlattenBatch(
            InterventionalTreeShapBatch(forest, background, data.x()));
        out.insert(out.end(), margin.begin(), margin.end());
        out.insert(out.end(), iv.begin(), iv.end());
        return out;
      },
      [](const Vector& a, const Vector& b) {
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
      });
}

TEST(ParallelExplain, ShapExplainBatchIsThreadCountInvariant) {
  Dataset data = CreditGen().Generate(120, 512);
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 6;
  ASSERT_TRUE(forest.Fit(data, opts).ok());
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(data).ok());
  std::vector<size_t> keep;
  for (size_t i = 0; i < 15; ++i) keep.push_back(2 * i);
  const Dataset background = data.Subset(keep);
  ExpectSameAcrossThreadCounts<Vector>(
      [&] {
        // Tree route (batched interventional engine) and generic route
        // (per-row masking games on forked streams) in one pass.
        Rng rng(513);
        const Matrix trees =
            ShapExplainBatch(forest, background, data.x(), 40, &rng);
        const Matrix generic =
            ShapExplainBatch(lr, background, data.x(), 40, &rng);
        Vector out;
        for (size_t i = 0; i < trees.rows(); ++i)
          for (size_t c = 0; c < trees.cols(); ++c)
            out.push_back(trees.At(i, c));
        for (size_t i = 0; i < generic.rows(); ++i)
          for (size_t c = 0; c < generic.cols(); ++c)
            out.push_back(generic.At(i, c));
        return out;
      },
      [](const Vector& a, const Vector& b) {
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
      });
}

TEST(ParallelUnfair, FairnessShapDeepTreeFastPathIsThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(400, 514);
  DecisionTree tree;
  DecisionTreeOptions topts;
  topts.max_depth = 9;
  topts.min_samples_leaf = 2;
  ASSERT_TRUE(tree.Fit(data, topts).ok());
  FairnessShapOptions opts;  // kMask + tree fast path by default.
  ExpectSameAcrossThreadCounts<FairnessShapReport>(
      [&] { return ExplainParityWithShapley(tree, data, opts); },
      [](const FairnessShapReport& a, const FairnessShapReport& b) {
        ASSERT_EQ(a.contributions.size(), b.contributions.size());
        for (size_t i = 0; i < a.contributions.size(); ++i)
          EXPECT_EQ(a.contributions[i], b.contributions[i]);
        EXPECT_EQ(a.ranked_features, b.ranked_features);
        EXPECT_EQ(a.baseline_gap, b.baseline_gap);
        EXPECT_EQ(a.full_gap, b.full_gap);
      });
}

TEST(ParallelModel, KnnNeighborsAndBatchAreThreadCountInvariant) {
  Dataset data = CreditGen().Generate(300, 510);
  Dataset probe = CreditGen().Generate(60, 511);
  KnnClassifier knn(5);
  ASSERT_TRUE(knn.Fit(data).ok());
  using Out = std::pair<std::vector<size_t>, Vector>;
  ExpectSameAcrossThreadCounts<Out>(
      [&] {
        return Out{knn.Neighbors(probe.instance(0), 9),
                   knn.PredictProbaBatch(probe.x())};
      },
      [](const Out& a, const Out& b) {
        EXPECT_EQ(a.first, b.first);
        ASSERT_EQ(a.second.size(), b.second.size());
        for (size_t i = 0; i < a.second.size(); ++i)
          EXPECT_EQ(a.second[i], b.second[i]);
      });
}

TEST(ParallelExplain, SeededGroupCounterfactualsAreThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(120, 512);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  CounterfactualConfig config;
  config.seed_radius_from_neighbors = true;
  using Out = std::pair<std::vector<size_t>, std::vector<Vector>>;
  ExpectSameAcrossThreadCounts<Out>(
      [&] {
        Rng rng(513);
        auto group = CounterfactualsForNegatives(model, data, config, &rng);
        std::vector<Vector> cfs;
        for (const auto& r : group.results) cfs.push_back(r.counterfactual);
        return Out{group.indices, cfs};
      },
      [](const Out& a, const Out& b) {
        EXPECT_EQ(a.first, b.first);
        ASSERT_EQ(a.second.size(), b.second.size());
        for (size_t i = 0; i < a.second.size(); ++i)
          EXPECT_EQ(a.second[i], b.second[i]);
      });
}

TEST(ParallelModel, LogisticFitAndBatchAreThreadCountInvariant) {
  // The kernel-backed LR fit and its chunk-parallel PredictProbaBatch
  // must produce bit-identical weights and probabilities at 1/2/8
  // threads: every reduction runs in the pinned kernel order and chunk
  // boundaries only partition rows.
  Dataset data = CreditGen().Generate(300, 520);
  Dataset probe = CreditGen().Generate(64, 521);
  using Out = std::pair<Vector, Vector>;
  ExpectSameAcrossThreadCounts<Out>(
      [&] {
        LogisticRegression model;
        XFAIR_CHECK(model.Fit(data).ok());
        return Out{model.weights(), model.PredictProbaBatch(probe.x())};
      },
      [](const Out& a, const Out& b) {
        ASSERT_EQ(a.first.size(), b.first.size());
        for (size_t i = 0; i < a.first.size(); ++i)
          EXPECT_EQ(a.first[i], b.first[i]);
        ASSERT_EQ(a.second.size(), b.second.size());
        for (size_t i = 0; i < a.second.size(); ++i)
          EXPECT_EQ(a.second[i], b.second[i]);
      });
}

TEST(ParallelModel, SoftmaxFitAndBatchAreThreadCountInvariant) {
  Dataset data = CreditGen().Generate(250, 522);
  Dataset probe = CreditGen().Generate(40, 523);
  ExpectSameAcrossThreadCounts<Matrix>(
      [&] {
        SoftmaxRegression model;
        XFAIR_CHECK(model.Fit(data.x(), data.labels(), 2).ok());
        return model.PredictProbaBatch(probe.x());
      },
      [](const Matrix& a, const Matrix& b) {
        ASSERT_EQ(a.rows(), b.rows());
        ASSERT_EQ(a.cols(), b.cols());
        for (size_t r = 0; r < a.rows(); ++r)
          for (size_t c = 0; c < a.cols(); ++c)
            EXPECT_EQ(a.At(r, c), b.At(r, c));
      });
}

TEST(ParallelModel, ForestFitIsThreadCountInvariant) {
  Dataset data = CreditGen().Generate(300, 503);
  Dataset probe = CreditGen().Generate(50, 504);
  RandomForestOptions opts;
  opts.num_trees = 16;
  ExpectSameAcrossThreadCounts<Vector>(
      [&] {
        RandomForest forest;
        XFAIR_CHECK(forest.Fit(data, opts).ok());
        return forest.PredictProbaBatch(probe.x());
      },
      [](const Vector& a, const Vector& b) {
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
      });
}

TEST(ParallelExplain, GroupCounterfactualsAreThreadCountInvariant) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(120, 505);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  using Out = std::pair<std::vector<size_t>, std::vector<Vector>>;
  ExpectSameAcrossThreadCounts<Out>(
      [&] {
        Rng rng(506);
        auto group = CounterfactualsForNegatives(model, data, {}, &rng);
        std::vector<Vector> cfs;
        for (const auto& r : group.results) cfs.push_back(r.counterfactual);
        return Out{group.indices, cfs};
      },
      [](const Out& a, const Out& b) {
        EXPECT_EQ(a.first, b.first);
        ASSERT_EQ(a.second.size(), b.second.size());
        for (size_t i = 0; i < a.second.size(); ++i)
          EXPECT_EQ(a.second[i], b.second[i]);
      });
}

// --- batched inference consistency -----------------------------------

class BatchConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override { data_ = CreditGen().Generate(200, 601); }

  void ExpectBatchMatchesRows(const Model& model) {
    const Vector batch = model.PredictProbaBatch(data_.x());
    ASSERT_EQ(batch.size(), data_.size());
    for (size_t i = 0; i < data_.size(); ++i) {
      EXPECT_EQ(batch[i], model.PredictProba(data_.instance(i)))
          << model.name() << " row " << i;
    }
    const std::vector<int> decisions = model.PredictBatch(data_.x());
    for (size_t i = 0; i < data_.size(); ++i) {
      EXPECT_EQ(decisions[i], model.Predict(data_.instance(i)))
          << model.name() << " row " << i;
    }
  }

  Dataset data_;
};

TEST_F(BatchConsistencyTest, LogisticRegression) {
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data_).ok());
  ExpectBatchMatchesRows(model);
}

TEST_F(BatchConsistencyTest, DecisionTree) {
  DecisionTree model;
  ASSERT_TRUE(model.Fit(data_).ok());
  ExpectBatchMatchesRows(model);
}

TEST_F(BatchConsistencyTest, RandomForest) {
  RandomForest model;
  RandomForestOptions opts;
  opts.num_trees = 10;
  ASSERT_TRUE(model.Fit(data_, opts).ok());
  ExpectBatchMatchesRows(model);
}

TEST_F(BatchConsistencyTest, GradientBoostedTrees) {
  GradientBoostedTrees model;
  GbmOptions opts;
  opts.num_rounds = 20;
  ASSERT_TRUE(model.Fit(data_, opts).ok());
  ExpectBatchMatchesRows(model);
}

TEST_F(BatchConsistencyTest, Knn) {
  KnnClassifier model(5);
  ASSERT_TRUE(model.Fit(data_).ok());
  ExpectBatchMatchesRows(model);
}

TEST_F(BatchConsistencyTest, SoftmaxRegression) {
  MulticlassCredit mc = GenerateMulticlassCredit(200, 0.8, 602);
  SoftmaxRegression model;
  ASSERT_TRUE(model.Fit(mc.x, mc.labels, 3).ok());
  const Matrix batch = model.PredictProbaBatch(mc.x);
  ASSERT_EQ(batch.rows(), mc.x.rows());
  for (size_t i = 0; i < mc.x.rows(); ++i) {
    const Vector row = model.PredictProba(mc.x.Row(i));
    ASSERT_EQ(batch.cols(), row.size());
    for (size_t k = 0; k < row.size(); ++k)
      EXPECT_EQ(batch.At(i, k), row[k]) << "row " << i << " class " << k;
  }
  const std::vector<int> decisions = model.PredictBatch(mc.x);
  for (size_t i = 0; i < mc.x.rows(); ++i)
    EXPECT_EQ(decisions[i], model.Predict(mc.x.Row(i)));
}


TEST(ParallelKdTree, DuplicateTieOrderIsThreadCountInvariant) {
  // Rows with many exact duplicates force (distance, row) ties; queries
  // fanned out over the pool must resolve them identically to the stable
  // brute-force scan for every thread count (including XFAIR_THREADS=4,
  // which reruns this whole binary).
  Matrix pts(64, 2);
  for (size_t r = 0; r < 64; ++r) {
    pts.At(r, 0) = static_cast<double>(r % 4);  // 16 copies of each point.
    pts.At(r, 1) = static_cast<double>(r % 2);
  }
  const KdTree kd(pts, /*leaf_size=*/4);
  ExpectSameAcrossThreadCounts<std::vector<std::vector<size_t>>>(
      [&] {
        std::vector<std::vector<size_t>> out(64);
        ParallelFor(0, size_t{64}, [&](size_t qi) {
          out[qi] = kd.KNearest(pts.RowPtr(qi), 10);
        });
        return out;
      },
      [&](const auto& serial, const auto& parallel) {
        EXPECT_EQ(serial, parallel);
      });
  // And the serial answer itself matches the stable brute force.
  for (size_t qi : {0u, 3u, 63u}) {
    std::vector<std::pair<double, size_t>> dist(64);
    for (size_t i = 0; i < 64; ++i) {
      double acc = 0.0;
      for (size_t c = 0; c < 2; ++c) {
        const double diff = pts.At(i, c) - pts.At(qi, c);
        acc += diff * diff;
      }
      dist[i] = {acc, i};
    }
    std::sort(dist.begin(), dist.end());
    std::vector<size_t> brute(10);
    for (size_t i = 0; i < 10; ++i) brute[i] = dist[i].second;
    EXPECT_EQ(kd.KNearest(pts.RowPtr(qi), 10), brute) << "query " << qi;
  }
}

TEST(ParallelObs, SpansAndCountersFromWorkerThreadsAllLand) {
  // Spans are recorded into lock-free per-thread buffers; every body of a
  // ParallelFor must land exactly one span and one counter increment no
  // matter how the pool slices the range. Running this under the TSan
  // stage of scripts/verify.sh is what certifies the buffers race-free.
  ThreadGuard guard;
  obs::Counter& c = obs::GetCounter("parallel_test/span_bodies");
  for (size_t threads : {1u, 2u, 8u}) {
    SetParallelThreads(threads);
    obs::SetTracingEnabled(false);
    obs::FlushSpans();  // Drain anything earlier tests left behind.
    c.Reset();
    obs::SetTracingEnabled(true);
    ParallelFor(0, size_t{257}, [&](size_t) {
      XFAIR_SPAN("parallel_test/body");
      XFAIR_COUNTER_ADD("parallel_test/span_bodies", 1);
    });
    obs::SetTracingEnabled(false);
    const std::vector<obs::SpanRecord> spans = obs::FlushSpans();
    size_t bodies = 0;
    for (const obs::SpanRecord& s : spans) {
      if (s.name == std::string("parallel_test/body")) ++bodies;
    }
#ifdef XFAIR_OBS_DISABLED
    EXPECT_EQ(bodies, 0u);
    EXPECT_EQ(c.value(), 0u);
#else
    EXPECT_EQ(bodies, 257u) << "threads " << threads;
    EXPECT_EQ(c.value(), 257u);
#endif
  }
}

TEST(ParallelObs, MonitorIngestionIsThreadCountInvariant) {
  // FairnessMonitor ingestion uses the same lock-free per-thread buffer
  // design as the tracer; running this under the TSan stage of
  // scripts/verify.sh certifies it race-free. Events carry explicit
  // sequence numbers, so the drained processing order — and with it the
  // snapshot, including every drift alarm's seq — must be byte-identical
  // no matter how the pool splits the ingestion loop.
  ThreadGuard guard;
  const size_t n = 5000;
  std::string snapshots[3];
  size_t variant = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SetParallelThreads(threads);
    obs::MonitorOptions mopts;
    mopts.window = 256;
    obs::FairnessMonitor monitor("parallel_test/monitor", mopts);
    ParallelFor(0, n, [&](size_t i) {
      // A planted parity shift halfway through the sequence, so the
      // invariance check covers detector state and alarms too.
      const int group = static_cast<int>(i % 2);
      const bool biased = i >= n / 2 && group == 1;
      const double score = biased ? 0.2 : (i % 3 ? 0.8 : 0.3);
      monitor.Ingest({static_cast<uint64_t>(i), score, score >= 0.5,
                      static_cast<int>(i % 5 != 0), group});
    });
    monitor.Drain();
    snapshots[variant++] = monitor.SnapshotJson();
#ifndef XFAIR_OBS_DISABLED
    EXPECT_EQ(monitor.events_processed(), n);
    EXPECT_FALSE(monitor.alarms().empty());
#endif
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
}

TEST(ParallelObs, FlightRecorderCapturesEveryWorkerSpan) {
  // The flight recorder's per-thread rings use the same owner-appends /
  // release-publish discipline as the tracer buffers; running this under
  // the TSan stage of scripts/verify.sh certifies them race-free. Every
  // loop body must land exactly one retained span (no drops at default
  // capacity) no matter how the pool slices the range.
  ThreadGuard guard;
  for (size_t threads : {1u, 2u, 8u}) {
    SetParallelThreads(threads);
    obs::ResetRecorder();
    obs::SetRecorderEnabled(true);
    ParallelFor(0, size_t{257}, [&](size_t) {
      XFAIR_SPAN("parallel_test/flight_body");
    });
    obs::SetRecorderEnabled(false);
    size_t bodies = 0;
    for (const obs::SpanRecord& s : obs::SnapshotFlightSpans()) {
      if (s.name == std::string("parallel_test/flight_body")) ++bodies;
    }
#ifdef XFAIR_OBS_DISABLED
    EXPECT_EQ(bodies, 0u);
#else
    EXPECT_EQ(bodies, 257u) << "threads " << threads;
    EXPECT_EQ(obs::FlightSpansDropped(), 0u);
#endif
  }
  obs::ResetRecorder();
}

TEST(ParallelObs, EventLogBytesAreThreadCountInvariant) {
  // Events are emitted only at API boundaries on the caller thread, so
  // the rendered JSONL — sequence numbers, field values, everything —
  // must be byte-identical at any pool size.
  ThreadGuard guard;
  const Dataset data = CreditGen().Generate(300, 23);
  std::vector<size_t> all(data.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::string logs[3];
  size_t variant = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SetParallelThreads(threads);
    obs::ResetEventLog();
    obs::SetEventLogEnabled(true);
    LogisticRegression model;
    ASSERT_TRUE(model.Fit(data).ok());
    (void)FairnessShapBatch(model, data, all, {});
    SliceSearchOptions sopts;
    sopts.max_conditions = 2;
    (void)WorstSliceSearch(model, data, sopts);
    obs::SetEventLogEnabled(false);
    logs[variant++] = obs::EventsToJsonl(obs::DrainEvents());
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[0], logs[2]);
#ifndef XFAIR_OBS_DISABLED
  EXPECT_NE(logs[0].find("\"event\":\"fit\""), std::string::npos);
  EXPECT_NE(logs[0].find("\"event\":\"batch\""), std::string::npos);
  EXPECT_NE(logs[0].find("worst_slice_done"), std::string::npos);
#endif
}

TEST(ParallelObs, FlightSpanNameMultisetIsThreadCountInvariant) {
  // The flight window's span *placement* depends on which worker ran
  // which chunk, but DeterministicChunks splits ranges identically at
  // any pool size — so the multiset of recorded span names is invariant
  // even though the per-ring distribution is not.
  ThreadGuard guard;
  const Dataset data = CreditGen().Generate(400, 29);
  DecisionTree tree;
  DecisionTreeOptions topts;
  topts.max_depth = 6;
  ASSERT_TRUE(tree.Fit(data, topts).ok());
  SliceSearchOptions sopts;
  sopts.max_conditions = 2;
  std::vector<std::string> names[3];
  size_t variant = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SetParallelThreads(threads);
    obs::ResetRecorder();
    obs::SetRecorderEnabled(true);
    (void)WorstSliceSearch(tree, data, sopts);
    obs::SetRecorderEnabled(false);
    std::vector<std::string>& v = names[variant++];
    for (const obs::SpanRecord& s : obs::SnapshotFlightSpans()) {
      v.push_back(s.name);
    }
    std::sort(v.begin(), v.end());
  }
  EXPECT_EQ(names[0], names[1]);
  EXPECT_EQ(names[0], names[2]);
#ifndef XFAIR_OBS_DISABLED
  ASSERT_FALSE(names[0].empty());
  EXPECT_TRUE(std::binary_search(names[0].begin(), names[0].end(),
                                 std::string("slice_search/level_score")));
  EXPECT_TRUE(std::binary_search(names[0].begin(), names[0].end(),
                                 std::string("slice_search/worst_slice")));
#endif
  obs::ResetRecorder();
}

}  // namespace
}  // namespace xfair
