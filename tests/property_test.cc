// Property-based sweeps: invariants that must hold across generators,
// models, seeds, and parameter grids — run as parameterized gtest suites.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/data/generators.h"
#include "src/explain/counterfactual.h"
#include "src/explain/shap.h"
#include "src/fairness/group_metrics.h"
#include "src/fairness/ranking_metrics.h"
#include "src/mitigate/preprocess.h"
#include "src/model/knn.h"
#include "src/model/logistic_regression.h"
#include "src/model/random_forest.h"
#include "src/unfair/actions.h"
#include "src/unfair/burden.h"

namespace xfair {
namespace {

// ---------------------------------------------------------------------
// Counterfactual feasibility across (generator x model) combinations.
// ---------------------------------------------------------------------

enum class Gen { kCredit, kRecidivism, kIncome };
enum class Mod { kLogistic, kForest, kKnn };

Dataset MakeData(Gen g, size_t n, uint64_t seed) {
  BiasConfig cfg;
  cfg.score_shift = 0.8;
  switch (g) {
    case Gen::kCredit:
      return CreditGen(cfg).Generate(n, seed);
    case Gen::kRecidivism:
      return RecidivismGen(cfg).Generate(n, seed);
    case Gen::kIncome:
      return IncomeGen(cfg).Generate(n, seed);
  }
  XFAIR_CHECK(false);
  return CreditGen().Generate(1, 0);
}

std::unique_ptr<Model> MakeModel(Mod m, const Dataset& data) {
  switch (m) {
    case Mod::kLogistic: {
      auto model = std::make_unique<LogisticRegression>();
      XFAIR_CHECK(model->Fit(data).ok());
      return model;
    }
    case Mod::kForest: {
      auto model = std::make_unique<RandomForest>();
      RandomForestOptions opts;
      opts.num_trees = 12;
      XFAIR_CHECK(model->Fit(data, opts).ok());
      return model;
    }
    case Mod::kKnn: {
      auto model = std::make_unique<KnnClassifier>(7);
      XFAIR_CHECK(model->Fit(data).ok());
      return model;
    }
  }
  XFAIR_CHECK(false);
  return nullptr;
}

class CfFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<Gen, Mod>> {};

TEST_P(CfFeasibilityTest, CounterfactualsAreFeasible) {
  const auto [gen, mod] = GetParam();
  Dataset data = MakeData(gen, 500, 301);
  auto model = MakeModel(mod, data);
  Rng rng(302);
  size_t checked = 0;
  for (size_t i = 0; i < data.size() && checked < 15; ++i) {
    const Vector x = data.instance(i);
    if (model->Predict(x) != 0) continue;
    ++checked;
    auto r =
        GrowingSpheresCounterfactual(*model, data.schema(), x, {}, &rng);
    if (!r.valid) continue;
    // Invariants: predicted class flipped; bounds respected; immutables
    // untouched; directional features moved the allowed way; reported
    // distance/sparsity consistent.
    EXPECT_EQ(model->Predict(r.counterfactual), 1);
    for (size_t c = 0; c < x.size(); ++c) {
      const auto& spec = data.schema().feature(c);
      EXPECT_GE(r.counterfactual[c], spec.lower);
      EXPECT_LE(r.counterfactual[c], spec.upper);
      const double delta = r.counterfactual[c] - x[c];
      switch (spec.actionability) {
        case Actionability::kImmutable:
          EXPECT_DOUBLE_EQ(delta, 0.0) << spec.name;
          break;
        case Actionability::kIncreaseOnly:
          EXPECT_GE(delta, 0.0) << spec.name;
          break;
        case Actionability::kDecreaseOnly:
          EXPECT_LE(delta, 0.0) << spec.name;
          break;
        case Actionability::kAny:
          break;
      }
    }
    EXPECT_NEAR(r.distance,
                NormalizedDistance(data.schema(), x, r.counterfactual),
                1e-12);
    EXPECT_EQ(r.sparsity, NonZeroCount(Sub(r.counterfactual, x), 1e-12));
  }
  EXPECT_GT(checked, 0u) << "fixture produced no negatives";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CfFeasibilityTest,
    ::testing::Combine(::testing::Values(Gen::kCredit, Gen::kRecidivism,
                                         Gen::kIncome),
                       ::testing::Values(Mod::kLogistic, Mod::kForest,
                                         Mod::kKnn)));

// ---------------------------------------------------------------------
// Group-metric invariants across generators.
// ---------------------------------------------------------------------

class MetricInvariantTest : public ::testing::TestWithParam<Gen> {};

TEST_P(MetricInvariantTest, RangesAndSymmetry) {
  Dataset data = MakeData(GetParam(), 800, 303);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  const double parity = StatisticalParityDifference(model, data);
  EXPECT_GE(parity, -1.0);
  EXPECT_LE(parity, 1.0);
  EXPECT_GE(DisparateImpactRatio(model, data), 0.0);
  EXPECT_GE(EqualizedOddsDifference(model, data), 0.0);
  EXPECT_LE(EqualizedOddsDifference(model, data), 1.0);

  // Swapping group labels negates the signed differences.
  std::vector<int> flipped(data.size());
  for (size_t i = 0; i < data.size(); ++i) flipped[i] = 1 - data.group(i);
  Dataset swapped(data.schema(), data.x(), data.labels(), flipped);
  EXPECT_NEAR(StatisticalParityDifference(model, swapped), -parity,
              1e-12);
  EXPECT_NEAR(EqualOpportunityDifference(model, swapped),
              -EqualOpportunityDifference(model, data), 1e-12);
  // Equalized odds is symmetric in the groups.
  EXPECT_NEAR(EqualizedOddsDifference(model, swapped),
              EqualizedOddsDifference(model, data), 1e-12);
}

TEST_P(MetricInvariantTest, ReweighingIndependenceHolds) {
  Dataset data = MakeData(GetParam(), 600, 304);
  Vector w = ReweighingWeights(data);
  double mass[2] = {0, 0}, pos[2] = {0, 0};
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_GT(w[i], 0.0);
    mass[data.group(i)] += w[i];
    pos[data.group(i)] += w[i] * data.label(i);
  }
  EXPECT_NEAR(pos[1] / mass[1], pos[0] / mass[0], 1e-9);
  // Total weight is preserved (reweighing redistributes, not rescales).
  EXPECT_NEAR(mass[0] + mass[1], static_cast<double>(data.size()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, MetricInvariantTest,
                         ::testing::Values(Gen::kCredit, Gen::kRecidivism,
                                           Gen::kIncome));

// ---------------------------------------------------------------------
// Shapley axioms on random games of varying size.
// ---------------------------------------------------------------------

class ShapleyAxiomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShapleyAxiomTest, EfficiencySymmetryDummy) {
  const size_t d = GetParam();
  Rng rng(305 + d);
  // Random game built so that: player 0 and 1 are symmetric (value
  // depends on them only via their count), player d-1 is a dummy.
  Vector base(size_t{1} << (d - 1));
  for (double& v : base) v = rng.Uniform(-1, 1);
  CoalitionValue value = [&](const std::vector<bool>& mask) {
    // Collapse players 0,1 into a count and drop the dummy d-1.
    size_t key = 0;
    size_t bit = 0;
    const int count01 = static_cast<int>(mask[0]) + static_cast<int>(mask[1]);
    key |= static_cast<size_t>(count01 > 0);  // Symmetric in 0 and 1.
    ++bit;
    for (size_t i = 2; i + 1 < d; ++i) {
      key |= static_cast<size_t>(mask[i]) << bit;
      ++bit;
    }
    return base[key] + 0.3 * count01;
  };
  Vector phi = ExactShapley(value, d);
  // Efficiency.
  std::vector<bool> none(d, false), all(d, true);
  double sum = 0.0;
  for (double p : phi) sum += p;
  EXPECT_NEAR(sum, value(all) - value(none), 1e-9);
  // Symmetry of players 0 and 1.
  EXPECT_NEAR(phi[0], phi[1], 1e-9);
  // Dummy player gets zero.
  EXPECT_NEAR(phi[d - 1], 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(GameSizes, ShapleyAxiomTest,
                         ::testing::Values(4u, 6u, 8u, 10u));

// ---------------------------------------------------------------------
// Burden invariants across scopes and generators.
// ---------------------------------------------------------------------

class BurdenInvariantTest
    : public ::testing::TestWithParam<std::tuple<Gen, BurdenScope>> {};

TEST_P(BurdenInvariantTest, NonNegativeAndBounded) {
  const auto [gen, scope] = GetParam();
  Dataset data = MakeData(gen, 400, 306);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  Rng rng(307);
  auto report = ComputeBurden(model, data, scope, {}, &rng);
  EXPECT_GE(report.burden_protected, 0.0);
  EXPECT_GE(report.burden_non_protected, 0.0);
  size_t negatives = 0;
  for (size_t i = 0; i < data.size(); ++i)
    negatives += (model.Predict(data.instance(i)) == 0);
  EXPECT_LE(report.counterfactuals_protected +
                report.counterfactuals_non_protected + report.failures,
            negatives);
}

INSTANTIATE_TEST_SUITE_P(
    ScopesAndGenerators, BurdenInvariantTest,
    ::testing::Combine(::testing::Values(Gen::kCredit, Gen::kIncome),
                       ::testing::Values(BurdenScope::kAllNegatives,
                                         BurdenScope::kFalseNegatives)));

// ---------------------------------------------------------------------
// Discretizer / action invariants on random data.
// ---------------------------------------------------------------------

class DiscretizerTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DiscretizerTest, BinsPartitionAndRepresentativesBelong) {
  const size_t bins = GetParam();
  Dataset data = CreditGen().Generate(300, 308);
  Discretizer disc(data, bins);
  for (size_t f = 0; f < data.num_features(); ++f) {
    EXPECT_GE(disc.NumBins(f), 1u);
    EXPECT_LE(disc.NumBins(f), bins);
    for (size_t b = 0; b < disc.NumBins(f); ++b) {
      // A bin's representative falls back into that bin.
      EXPECT_EQ(disc.BinOf(f, disc.Representative(f, b)), b)
          << "feature " << f << " bin " << b;
      EXPECT_FALSE(disc.BinLabel(data.schema(), f, b).empty());
    }
    // Every data value lands in a valid bin.
    for (size_t i = 0; i < 50; ++i) {
      EXPECT_LT(disc.BinOf(f, data.x().At(i, f)), disc.NumBins(f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BinCounts, DiscretizerTest,
                         ::testing::Values(2u, 3u, 5u, 8u));

TEST(ActionProperties, CostAndApplicability) {
  Dataset data = CreditGen().Generate(200, 309);
  Discretizer disc(data, 3);
  const auto actions = EnumerateActions(data.schema(), disc);
  ASSERT_FALSE(actions.empty());
  const Vector x = data.instance(0);
  for (const auto& a : actions) {
    // Never an action on an immutable feature.
    EXPECT_NE(data.schema().feature(a.feature).actionability,
              Actionability::kImmutable);
    EXPECT_GE(a.Cost(data.schema(), x), 0.0);
    if (a.ApplicableTo(data.schema(), x)) {
      const Vector applied = a.ApplyTo(x);
      EXPECT_DOUBLE_EQ(applied[a.feature], a.target_value);
      // Idempotent.
      EXPECT_EQ(a.ApplyTo(applied), applied);
    }
  }
}

// ---------------------------------------------------------------------
// Ranking metric invariants under permutations.
// ---------------------------------------------------------------------

TEST(RankingProperties, ExposureShareBounds) {
  Rng rng(310);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 5 + rng.Below(20);
    std::vector<size_t> ranking(n);
    std::vector<int> groups(n);
    for (size_t i = 0; i < n; ++i) {
      ranking[i] = i;
      groups[i] = rng.Bernoulli(0.5) ? 1 : 0;
    }
    rng.Shuffle(&ranking);
    const double share = *ExposureShare(ranking, groups);
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
    const double p = *FairPrefixPValue(ranking, groups);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // Complementary group shares sum to 1.
    std::vector<int> complement(n);
    for (size_t i = 0; i < n; ++i) complement[i] = 1 - groups[i];
    EXPECT_NEAR(share + *ExposureShare(ranking, complement), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace xfair
