// Tests for src/rec (interactions, RecWalk, MF) and the recommendation
// fairness explainers in src/beyond (edge removal, CEF, CFairER, GNNUERS,
// Dexer, KG reranking).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/beyond/cef.h"
#include "src/beyond/cfairer.h"
#include "src/beyond/dexer.h"
#include "src/beyond/gnnuers.h"
#include "src/beyond/kg_rerank.h"
#include "src/beyond/rec_edge_explain.h"
#include "src/data/generators.h"

namespace xfair {
namespace {

RecWorld BiasedWorld(uint64_t seed = 11) {
  RecGenConfig cfg;
  cfg.protected_item_popularity = 0.3;
  cfg.protected_user_activity = 0.5;
  return GenerateRecWorld(cfg, seed);
}

TEST(Interactions, AddRemoveHas) {
  Interactions ia(3, 4);
  ia.Add(0, 1);
  ia.Add(0, 1);  // Idempotent.
  ia.Add(2, 3);
  EXPECT_EQ(ia.num_interactions(), 2u);
  EXPECT_TRUE(ia.Has(0, 1));
  EXPECT_EQ(ia.ItemsOf(0).size(), 1u);
  EXPECT_EQ(ia.UsersOf(3).size(), 1u);
  ia.Remove(0, 1);
  EXPECT_FALSE(ia.Has(0, 1));
  EXPECT_EQ(ia.num_interactions(), 1u);
}

TEST(RecGen, PopularityBiasSuppressesProtectedItems) {
  RecWorld world = BiasedWorld();
  size_t protected_hits = 0, total = 0;
  for (const auto& [u, i] : world.interactions.pairs()) {
    protected_hits += static_cast<size_t>(world.item_groups[i] == 1);
    ++total;
  }
  size_t protected_items = 0;
  for (int g : world.item_groups) protected_items += (g == 1);
  const double item_share = static_cast<double>(protected_items) /
                            static_cast<double>(world.item_groups.size());
  const double hit_share =
      static_cast<double>(protected_hits) / static_cast<double>(total);
  EXPECT_LT(hit_share, item_share)
      << "protected items should receive fewer interactions than their "
         "population share";
}

TEST(RecWalk, ScoresFormDistributionOverStates) {
  RecWorld world = BiasedWorld();
  RecWalkScorer scorer(&world.interactions);
  const Vector scores = scorer.ScoreItems(0);
  ASSERT_EQ(scores.size(), world.interactions.num_items());
  double total = 0.0;
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_LE(total, 1.0 + 1e-9);  // Item mass is part of the full chain.
  EXPECT_GT(total, 0.0);
}

TEST(RecWalk, RankExcludesConsumedItems) {
  RecWorld world = BiasedWorld();
  RecWalkScorer scorer(&world.interactions);
  const auto ranking = scorer.RankItems(0, 10);
  for (size_t i : ranking) EXPECT_FALSE(world.interactions.Has(0, i));
}

TEST(RecWalk, ExposureShareUnderRepresentsProtected) {
  RecWorld world = BiasedWorld();
  RecWalkScorer scorer(&world.interactions);
  const double share =
      RecExposureShare(scorer, world.interactions, world.item_groups, 10);
  size_t protected_items = 0;
  for (int g : world.item_groups) protected_items += (g == 1);
  const double population = static_cast<double>(protected_items) /
                            static_cast<double>(world.item_groups.size());
  EXPECT_LT(share, population + 0.05)
      << "walk-based exposure should mirror the popularity bias";
}

TEST(Mf, LearnsToSeparatePositivesFromNegatives) {
  RecWorld world = BiasedWorld();
  MatrixFactorization mf;
  ASSERT_TRUE(mf.Fit(world.interactions, {}).ok());
  // Mean score of observed pairs should beat mean score of random pairs.
  double pos = 0.0;
  for (const auto& [u, i] : world.interactions.pairs())
    pos += mf.Score(u, i);
  pos /= static_cast<double>(world.interactions.num_interactions());
  Rng rng(1);
  double neg = 0.0;
  size_t count = 0;
  for (size_t k = 0; k < 300; ++k) {
    const size_t u = rng.Below(world.interactions.num_users());
    const size_t i = rng.Below(world.interactions.num_items());
    if (world.interactions.Has(u, i)) continue;
    neg += mf.Score(u, i);
    ++count;
  }
  neg /= static_cast<double>(count);
  EXPECT_GT(pos, neg + 0.1);
}

TEST(Mf, DampedFactorChangesScore) {
  RecWorld world = BiasedWorld();
  MatrixFactorization mf;
  ASSERT_TRUE(mf.Fit(world.interactions, {}).ok());
  const double full = mf.Score(0, 0);
  EXPECT_NEAR(mf.ScoreWithDampedFactor(0, 0, 0, 1.0), full, 1e-12);
  // Damping all factors to zero zeroes the score.
  double zeroed = full;
  for (size_t f = 0; f < mf.rank(); ++f)
    zeroed -= full - mf.ScoreWithDampedFactor(0, 0, f, 0.0) > 0 ? 0 : 0;
  EXPECT_NEAR(mf.ScoreWithDampedFactor(0, 0, 0, 0.0) +
                  mf.user_factors().At(0, 0) * mf.item_factors().At(0, 0),
              full, 1e-12);
}

TEST(RecEdgeExplain, FindsExposureRaisingRemovals) {
  RecWorld world = BiasedWorld();
  RecEdgeExplainOptions opts;
  opts.max_edges = 15;
  auto attributions = ExplainExposureByEdgeRemoval(
      world.interactions, world.item_groups, opts);
  ASSERT_FALSE(attributions.empty());
  // Sorted descending by effect, and the best candidate dominates the
  // worst (whether any single removal raises exposure is data-dependent).
  for (size_t k = 1; k < attributions.size(); ++k)
    EXPECT_GE(attributions[k - 1].effect, attributions[k].effect);
  EXPECT_GE(attributions.front().effect, attributions.back().effect);
}

TEST(RecEdgeExplain, UserItemScoreAttributionsCoverOwnEdges) {
  RecWorld world = BiasedWorld();
  const size_t user = 0;
  ASSERT_FALSE(world.interactions.ItemsOf(user).empty());
  // Pick an item the user has not consumed.
  size_t target = 0;
  while (world.interactions.Has(user, target)) ++target;
  auto attributions =
      ExplainUserItemScore(world.interactions, user, target);
  EXPECT_EQ(attributions.size(),
            world.interactions.ItemsOf(user).size());
  for (const auto& a : attributions) EXPECT_EQ(a.user, user);
}

TEST(Cef, FactorsRankedByExplainability) {
  RecWorld world = BiasedWorld();
  MatrixFactorization mf;
  ASSERT_TRUE(mf.Fit(world.interactions, {}).ok());
  auto report = ExplainRecFairnessByFactors(mf, world.interactions,
                                            world.item_groups, {});
  ASSERT_EQ(report.ranked_factors.size(), mf.rank());
  for (size_t k = 1; k < report.ranked_factors.size(); ++k) {
    EXPECT_GE(report.ranked_factors[k - 1].explainability,
              report.ranked_factors[k].explainability);
  }
  for (const auto& f : report.ranked_factors) {
    EXPECT_GE(f.explainability, 0.0);  // Scale 1.0 is always available.
  }
}

TEST(Cfairer, FindsAttributeSetReducingGap) {
  RecWorld world = BiasedWorld();
  // Item attributes: attribute 0 encodes popularity (higher for
  // non-protected), others are noise.
  Rng rng(2);
  Matrix attrs(world.interactions.num_items(), 4);
  for (size_t i = 0; i < attrs.rows(); ++i) {
    attrs.At(i, 0) = world.item_groups[i] == 1 ? 0.2 : 1.0;
    for (size_t a = 1; a < 4; ++a) attrs.At(i, a) = rng.Uniform(0, 1);
  }
  AttributeRecommender model(world.interactions, std::move(attrs));
  CfairerOptions opts;
  opts.target_gap = 0.02;
  auto report = ExplainFairnessByAttributes(model, world.item_groups, opts);
  EXPECT_LE(report.final_exposure_gap, report.base_exposure_gap + 1e-12);
  if (!report.attribute_set.empty()) {
    // The popularity attribute should be among the removed ones.
    bool found = false;
    for (size_t a : report.attribute_set) found |= (a == 0);
    EXPECT_TRUE(found);
  }
}

TEST(Gnnuers, PerturbationShrinksQualityGap) {
  RecWorld world = BiasedWorld();
  GnnuersOptions opts;
  opts.max_deletions = 8;
  const double base = UserGroupQualityGap(world.interactions,
                                          world.user_groups, opts.top_k);
  auto report = ExplainUserUnfairnessByPerturbation(
      world.interactions, world.user_groups, opts);
  EXPECT_NEAR(report.base_gap, base, 1e-12);
  EXPECT_LE(std::fabs(report.final_gap), std::fabs(report.base_gap) + 1e-12);
  EXPECT_LE(report.deletions.size(), opts.max_deletions);
}

TEST(Dexer, DetectsAndExplainsUnderRepresentation) {
  // Tuples scored by a linear function dominated by a feature the
  // protected group scores low on (income in the credit generator).
  BiasConfig cfg;
  cfg.qualification_gap = 1.5;
  Dataset d = CreditGen(cfg).Generate(600, 12);
  TupleScorer scorer = [](const Vector& x) {
    return x[2] + 0.3 * x[3];  // income + savings
  };
  DexerOptions opts;
  opts.top_k = 60;
  auto report = ExplainRankingRepresentation(d, scorer, opts);
  EXPECT_GT(report.detection.representation_gap, 0.05)
      << "protected group should be under-represented in the top-k";
  // The Shapley explanation should rank income (2) or savings (3) first.
  const size_t top = report.ranked_attributes.front();
  EXPECT_TRUE(top == 2 || top == 3) << "got " << top;
  // Quantile tables exist for the visualization.
  ASSERT_EQ(report.group_quantiles.size(), d.num_features());
  EXPECT_LE(report.group_quantiles[2][0], report.group_quantiles[2][2]);
}

TEST(KgRerank, ConstraintMetWithMinimalLoss) {
  std::vector<ExplainedCandidate> candidates;
  Rng rng(3);
  for (size_t i = 0; i < 30; ++i) {
    ExplainedCandidate c;
    c.item = i;
    c.item_group = i % 3 == 0 ? 1 : 0;  // One third protected.
    // Protected items have slightly lower relevance (bias).
    c.relevance = rng.Uniform(0, 1) - 0.3 * (c.item_group == 1);
    c.path_type = static_cast<int>(i % 4);
    candidates.push_back(c);
  }
  KgRerankOptions opts;
  opts.min_protected_exposure = 0.35;
  auto result = FairRerank(candidates, opts);
  EXPECT_TRUE(result.constraint_met);
  EXPECT_GE(result.exposure_after, 0.35 - 1e-9);
  EXPECT_GE(result.exposure_after, result.exposure_before);
  EXPECT_GE(result.relevance_loss, 0.0);
  EXPECT_GT(result.path_diversity, 0.0);
  EXPECT_EQ(result.ranking.size(), opts.top_k);
}

TEST(KgRerank, AlreadyFairNeedsNoSwaps) {
  std::vector<ExplainedCandidate> candidates;
  for (size_t i = 0; i < 10; ++i) {
    candidates.push_back({i, 1.0 - 0.01 * static_cast<double>(i),
                          static_cast<int>(i % 2), 0});
  }
  KgRerankOptions opts;
  opts.min_protected_exposure = 0.2;
  opts.top_k = 6;
  auto result = FairRerank(candidates, opts);
  EXPECT_TRUE(result.constraint_met);
  EXPECT_DOUBLE_EQ(result.relevance_loss, 0.0);
}

}  // namespace
}  // namespace xfair
