// Tests for the flight recorder (src/obs/recorder) and the structured
// event log (src/obs/eventlog): trailing-K ring retention with
// deterministic drain order, counter-delta baselines, byte-exact JSONL
// rendering with sorted keys, capacity drops, and the headline
// integration — a planted drift alarm triggering a complete diagnostic
// bundle directory through the monitor's alarm hook bus. Every test
// also pins the -DXFAIR_OBS=OFF contract: no recording, no files, no
// output, while everything still links and returns OK.

#include "src/obs/recorder.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/data/generators.h"
#include "src/model/logistic_regression.h"
#include "src/obs/eventlog.h"
#include "src/obs/obs.h"

namespace xfair {
namespace {

namespace fs = std::filesystem;

using obs::BundleOptions;
using obs::EventRecord;
using obs::FairnessMonitor;
using obs::MonitorOptions;
using obs::ScopedStreamContext;
using obs::Severity;
using obs::SpanRecord;

/// Restores the recorder and event log to their shipped-off defaults
/// (and the default ring/log capacities) when a test exits, so suites
/// never observe each other's trailing state.
struct ObsGuard {
  ObsGuard() { Clear(); }
  ~ObsGuard() { Clear(); }
  static void Clear() {
    obs::SetRecorderEnabled(false);
    obs::SetEventLogEnabled(false);
    obs::SetRecorderRingCapacity(4096);
    obs::SetEventLogCapacity(65536);
    obs::ResetRecorder();
    obs::ResetEventLog();
    obs::SetMonitoringEnabled(false);
  }
};

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Recorder, RingRetainsTrailingSpansInAppendOrder) {
  ObsGuard guard;
  obs::SetRecorderRingCapacity(8);
  obs::SetRecorderEnabled(true);
  for (int i = 0; i < 20; ++i) {
    XFAIR_SPAN("recorder_test/trailing");
  }
  obs::SetRecorderEnabled(false);
  const std::vector<SpanRecord> spans = obs::SnapshotFlightSpans();
#ifdef XFAIR_OBS_DISABLED
  EXPECT_TRUE(spans.empty());
  EXPECT_EQ(obs::FlightSpansDropped(), 0u);
  EXPECT_FALSE(obs::RecorderEnabled());
#else
  // Only the trailing 8 of 20 survive; the overwritten 12 are counted.
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(obs::FlightSpansDropped(), 12u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].name, std::string("recorder_test/trailing"));
    if (i > 0) {
      // Append order within the ring: monotone start timestamps.
      EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
    }
  }
  // The snapshot is non-destructive and stable.
  const std::vector<SpanRecord> again = obs::SnapshotFlightSpans();
  ASSERT_EQ(again.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(again[i].start_ns, spans[i].start_ns);
    EXPECT_EQ(again[i].id, spans[i].id);
  }
#endif
}

TEST(Recorder, DisabledRecorderKeepsRingsEmpty) {
  ObsGuard guard;
  ASSERT_FALSE(obs::RecorderEnabled());
  for (int i = 0; i < 5; ++i) {
    XFAIR_SPAN("recorder_test/ignored");
  }
  EXPECT_TRUE(obs::SnapshotFlightSpans().empty());
  EXPECT_EQ(obs::FlightSpansDropped(), 0u);
}

TEST(Recorder, CounterDeltasMeasureFromEnableBaseline) {
  ObsGuard guard;
  XFAIR_COUNTER_ADD("recorder_test/delta", 7);  // Pre-enable: baseline.
  obs::SetRecorderEnabled(true);                // Captures the baseline.
  XFAIR_COUNTER_ADD("recorder_test/delta", 3);
  const auto deltas = obs::RecorderCounterDeltas();
  obs::SetRecorderEnabled(false);
  uint64_t seen = 0;
  for (const auto& d : deltas) {
    if (d.name == "recorder_test/delta") seen = d.value;
  }
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(seen, 0u);
#else
  // Only the post-enable increment counts, not the lifetime total.
  EXPECT_EQ(seen, 3u);
  // ResetRecorder re-captures: the delta vanishes.
  obs::ResetRecorder();
  for (const auto& d : obs::RecorderCounterDeltas()) {
    EXPECT_NE(d.name, "recorder_test/delta");
  }
#endif
}

TEST(EventLog, JsonlIsByteExactWithSortedKeysAndSeq) {
  ObsGuard guard;
  obs::SetEventLogEnabled(true);
  // Fields arrive unsorted; the log must render them sorted.
  obs::EmitEvent(Severity::kInfo, "model", "fit",
                 {{"rows", "1200"}, {"model", "logistic_regression"}});
  obs::EmitEvent(Severity::kWarn, "monitor", "drift_alarm",
                 {{"metric", "demographic_parity"}, {"detector", "page"}});
  obs::SetEventLogEnabled(false);
  const std::string jsonl = obs::EventsToJsonl(obs::DrainEvents());
#ifdef XFAIR_OBS_DISABLED
  EXPECT_TRUE(jsonl.empty());
#else
  EXPECT_EQ(jsonl,
            "{\"component\":\"model\",\"event\":\"fit\",\"fields\":"
            "{\"model\":\"logistic_regression\",\"rows\":\"1200\"},"
            "\"seq\":0,\"severity\":\"info\"}\n"
            "{\"component\":\"monitor\",\"event\":\"drift_alarm\","
            "\"fields\":{\"detector\":\"page\",\"metric\":"
            "\"demographic_parity\"},\"seq\":1,\"severity\":\"warn\"}\n");
  // Drained: the log is empty now.
  EXPECT_TRUE(obs::SnapshotEvents().empty());
#endif
}

TEST(EventLog, CapacityDropsOldestAndCounts) {
  ObsGuard guard;
  obs::SetEventLogEnabled(true);
  obs::SetEventLogCapacity(4);
  for (int i = 0; i < 10; ++i) {
    obs::EmitEvent(Severity::kDebug, "test", "tick");
  }
  obs::SetEventLogEnabled(false);
  const std::vector<EventRecord> events = obs::SnapshotEvents();
#ifdef XFAIR_OBS_DISABLED
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(obs::EventsDropped(), 0u);
#else
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 6u);  // Oldest retained.
  EXPECT_EQ(events.back().seq, 9u);
  EXPECT_EQ(obs::EventsDropped(), 6u);
#endif
}

TEST(EventLog, MacroSkipsArgumentEvaluationWhenDisabled) {
  ObsGuard guard;
  int evaluations = 0;
  const auto field = [&] {
    ++evaluations;
    return std::string("x");
  };
  (void)field;  // Unused entirely under -DXFAIR_OBS=OFF.
  ASSERT_FALSE(obs::EventLogEnabled());
  XFAIR_EVENT(kInfo, "test", "skipped", {{"k", field()}});
  EXPECT_EQ(evaluations, 0);
  obs::SetEventLogEnabled(true);
  XFAIR_EVENT(kInfo, "test", "recorded", {{"k", field()}});
  obs::SetEventLogEnabled(false);
#ifdef XFAIR_OBS_DISABLED
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
  const auto events = obs::DrainEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].event, "recorded");
#endif
}

TEST(Recorder, ProvenanceDefaultsToEmptyObjectAndRoundTrips) {
  ObsGuard guard;
  obs::SetActiveProvenance("");
  EXPECT_EQ(obs::ActiveProvenanceJson(), "{}");
  obs::SetActiveProvenance("{\"method\": \"m\"}");
  EXPECT_EQ(obs::ActiveProvenanceJson(), "{\"method\": \"m\"}");
  obs::SetActiveProvenance("");
}

TEST(Recorder, BundleDumpOnPlantedDriftAlarm) {
  ObsGuard guard;
  const fs::path root = fs::path("recorder_test_bundles");
  fs::remove_all(root);

  // The planted-shift workload from monitor_test: train on an unbiased
  // world, stream stationary traffic, then swap to a strongly biased
  // distribution at a known step. The drift alarm must fire and — via
  // the installed hook — dump a complete bundle directory.
  BiasConfig pre;
  pre.score_shift = 0.0;
  pre.label_bias = 0.0;
  pre.proxy_strength = 0.0;
  pre.qualification_gap = 0.0;
  BiasConfig post = pre;
  post.score_shift = 1.2;
  post.qualification_gap = 1.5;
  post.proxy_strength = 0.8;
  post.label_bias = 0.15;

  Dataset train = CreditGen(pre).Generate(1200, 7);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(train).ok());

  const size_t events = 3072, shift_at = 1536, window = 512, batch = 64;
  const Dataset pre_t = CreditGen(pre).Generate(events, 21);
  const Dataset post_t = CreditGen(post).Generate(events, 22);

  MonitorOptions mopts;
  mopts.window = window;
  FairnessMonitor monitor("recorder_test/planted_drift", mopts);
  BundleOptions bopts;
  bopts.directory = root.string();
  bopts.max_bundles = 1;
  obs::InstallBundleDumpOnAlarm(monitor, bopts);

  obs::SetActiveProvenance("{\"method\": \"recorder_test\"}");
  obs::SetRecorderEnabled(true);
  obs::SetEventLogEnabled(true);
  obs::SetMonitoringEnabled(true);
  for (size_t start = 0; start < events; start += batch) {
    const Dataset& world = start >= shift_at ? post_t : pre_t;
    std::vector<size_t> rows(batch);
    for (size_t i = 0; i < batch; ++i) rows[i] = start + i;
    const Dataset slice = world.Subset(rows);
    {
      ScopedStreamContext stream(&monitor, slice.groups().data(),
                                 slice.labels().data(), slice.size());
      (void)model.PredictProbaBatch(slice.x());
    }
    monitor.Drain();
  }
  obs::SetMonitoringEnabled(false);
  obs::SetEventLogEnabled(false);
  obs::SetRecorderEnabled(false);
  obs::SetActiveProvenance("");

#ifdef XFAIR_OBS_DISABLED
  // No alarms fire, no hooks run, no directory is ever created.
  EXPECT_TRUE(monitor.alarms().empty());
  EXPECT_FALSE(fs::exists(root));
#else
  ASSERT_FALSE(monitor.alarms().empty());
  ASSERT_TRUE(fs::exists(root));
  std::vector<fs::path> bundles;
  for (const auto& entry : fs::directory_iterator(root)) {
    bundles.push_back(entry.path());
  }
  ASSERT_EQ(bundles.size(), 1u) << "max_bundles must cap the alarm storm";
  const fs::path& bundle = bundles[0];
  // Directory name carries the alarm reason: "<metric>-<detector>".
  EXPECT_NE(bundle.filename().string().find("demographic_parity"),
            std::string::npos)
      << bundle;

  for (const char* file :
       {"MANIFEST.json", "trace.json", "monitor.json", "counters.json",
        "counter_deltas.json", "provenance.json", "events.jsonl"}) {
    EXPECT_TRUE(fs::exists(bundle / file)) << file;
  }

  // Provenance is the installed object, monitor.json is the monitor's
  // own snapshot at dump time (alarm state included), the event log
  // carries the drift_alarm record, and the manifest indexes it all.
  EXPECT_EQ(ReadFile(bundle / "provenance.json"),
            "{\"method\": \"recorder_test\"}\n");
  const std::string monitor_json = ReadFile(bundle / "monitor.json");
  EXPECT_NE(monitor_json.find("recorder_test/planted_drift"),
            std::string::npos);
  EXPECT_NE(monitor_json.find("\"alarms\""), std::string::npos);
  const std::string events_jsonl = ReadFile(bundle / "events.jsonl");
  EXPECT_NE(events_jsonl.find("\"event\":\"drift_alarm\""),
            std::string::npos);
  EXPECT_NE(events_jsonl.find("demographic_parity"), std::string::npos);
  const std::string manifest = ReadFile(bundle / "MANIFEST.json");
  EXPECT_NE(manifest.find("\"reason\""), std::string::npos);
  EXPECT_NE(manifest.find("\"span_count\""), std::string::npos);
  EXPECT_NE(manifest.find("\"event_count\""), std::string::npos);
  // The trailing flight window made it into the Chrome trace: the batch
  // predict path records spans while the recorder is on.
  const std::string trace = ReadFile(bundle / "trace.json");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // The dump emits its own lifecycle event (snapshot was taken before
  // it, so it lands in the live log, not the bundle).
  bool saw_dump_event = false;
  for (const EventRecord& e : obs::SnapshotEvents()) {
    saw_dump_event |= e.event == "bundle_dumped";
  }
  EXPECT_TRUE(saw_dump_event);
#endif
  fs::remove_all(root);
}

TEST(Recorder, ManualBundleDumpIsCompleteWithoutMonitor) {
  ObsGuard guard;
  const fs::path root = fs::path("recorder_test_manual");
  fs::remove_all(root);
  obs::SetRecorderEnabled(true);
  {
    XFAIR_SPAN("recorder_test/manual");
  }
  obs::SetRecorderEnabled(false);
  std::string dir;
  ASSERT_TRUE(obs::DumpDiagnosticBundle(root.string(), nullptr,
                                        "unit test!", &dir)
                  .ok());
#ifdef XFAIR_OBS_DISABLED
  EXPECT_TRUE(dir.empty());
  EXPECT_FALSE(fs::exists(root));
#else
  ASSERT_FALSE(dir.empty());
  // The reason is sanitized into [a-zA-Z0-9_-].
  EXPECT_NE(dir.find("unit-test-"), std::string::npos) << dir;
  EXPECT_EQ(ReadFile(fs::path(dir) / "monitor.json"), "{}\n");
  EXPECT_NE(ReadFile(fs::path(dir) / "trace.json")
                .find("recorder_test/manual"),
            std::string::npos);
#endif
  fs::remove_all(root);
}

}  // namespace
}  // namespace xfair
