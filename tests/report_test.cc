// Tests for the one-call audit report (src/core/report.h) and the
// umbrella header.

#include <gtest/gtest.h>

#include "src/xfair.h"  // Umbrella: must compile and expose everything.
#include "src/core/report.h"

namespace xfair {
namespace {

TEST(AuditReport, ContainsAllSectionsOnBiasedData) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  Dataset data = CreditGen(cfg).Generate(700, 801);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  const std::string report = WriteAuditReport(model, data);
  EXPECT_NE(report.find("# xfair audit report"), std::string::npos);
  EXPECT_NE(report.find("Group fairness"), std::string::npos);
  EXPECT_NE(report.find("Counterfactual burden"), std::string::npos);
  EXPECT_NE(report.find("fairness Shapley"), std::string::npos);
  EXPECT_NE(report.find("FACTS"), std::string::npos);
  EXPECT_NE(report.find("tradeoff"), std::string::npos);
  // The biased fixture must trip the 80%-rule verdict.
  EXPECT_NE(report.find("FAILS the 80% rule"), std::string::npos);
}

TEST(AuditReport, CanSkipCounterfactualSections) {
  Dataset data = CreditGen().Generate(300, 802);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  AuditReportOptions opts;
  opts.include_counterfactual_sections = false;
  const std::string report = WriteAuditReport(model, data, opts);
  EXPECT_EQ(report.find("Counterfactual burden"), std::string::npos);
  EXPECT_EQ(report.find("FACTS"), std::string::npos);
  EXPECT_NE(report.find("Group fairness"), std::string::npos);
}

TEST(AuditReport, DeterministicForSameSeed) {
  Dataset data = CreditGen().Generate(400, 803);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(WriteAuditReport(model, data), WriteAuditReport(model, data));
}

TEST(UmbrellaHeader, ExposesEveryLayer) {
  // One symbol per layer: compiling this test is most of the assertion.
  Rng rng(7);
  EXPECT_LE(rng.Uniform(), 1.0);                       // util
  EXPECT_EQ(CreditGen::MakeSchema().sensitive_index(), 0);  // data
  EXPECT_EQ(Matrix::Identity(2).At(1, 1), 1.0);        // matrix
  EXPECT_STREQ(ToString(FairnessTask::kGraph), "Graph");  // core taxonomy
  EXPECT_GE(PositionBias(0), PositionBias(1));         // fairness
  CausalWorld world = MakeCreditWorld(0.5);             // causal
  EXPECT_EQ(world.scm.num_vars(), 5u);
  Graph g(2);                                          // graph
  g.AddEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  Interactions ia(1, 1);                                // rec
  ia.Add(0, 0);
  EXPECT_TRUE(ia.Has(0, 0));
}

}  // namespace
}  // namespace xfair
