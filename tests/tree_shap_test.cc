// Golden equivalence tests for the polynomial tree fast paths
// (src/explain/tree_shap.h, src/util/kdtree.h, gopher's bitset lattice
// engine): every fast path is checked against the exponential /
// brute-force reference it replaces.

#include "src/explain/tree_shap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/data/generators.h"
#include "src/explain/counterfactual.h"
#include "src/model/knn.h"
#include "src/model/logistic_regression.h"
#include "src/obs/obs.h"
#include "src/unfair/fairness_shap.h"
#include "src/unfair/gopher.h"
#include "src/util/kdtree.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace xfair {
namespace {

constexpr double kTol = 1e-9;

/// The masking game ShapExplainInstance evaluates — the reference for the
/// interventional algorithm.
CoalitionValue MaskingGame(const Model& model, const Matrix& background,
                           const Vector& x) {
  return [&model, &background, x](const std::vector<bool>& mask) {
    Matrix z(background.rows(), x.size());
    for (size_t b = 0; b < background.rows(); ++b) {
      const double* row = background.RowPtr(b);
      double* out = z.RowPtr(b);
      for (size_t c = 0; c < x.size(); ++c)
        out[c] = mask[c] ? x[c] : row[c];
    }
    const Vector proba = model.PredictProbaBatch(z);
    double acc = 0.0;
    for (double p : proba) acc += p;
    return acc / static_cast<double>(background.rows());
  };
}

void ExpectNearVector(const Vector& a, const Vector& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol) << "feature " << i;
}

double Total(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

class TreeShapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = CreditGen().Generate(600, 71);
    for (size_t i = 0; i < 5; ++i) instances_.push_back(11 * i + 3);
  }

  Dataset data_;
  std::vector<size_t> instances_;
};

TEST_F(TreeShapTest, PathDependentMatchesExactShapleyOnTree) {
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data_).ok());
  for (size_t i : instances_) {
    const Vector x = data_.instance(i);
    const TreeShapExplanation fast = PathDependentTreeShap(tree, x);
    const CoalitionValue game = PathDependentGame(tree, x);
    const Vector exact = ExactShapley(game, x.size());
    ExpectNearVector(fast.phi, exact, kTol);
    // Efficiency: base + sum(phi) = v(full) = f(x); base = v(empty).
    EXPECT_NEAR(fast.base_value + Total(fast.phi), tree.PredictProba(x),
                kTol);
    EXPECT_NEAR(fast.base_value, game(std::vector<bool>(x.size(), false)),
                kTol);
  }
}

TEST_F(TreeShapTest, PathDependentMatchesExactShapleyOnForest) {
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 12;
  ASSERT_TRUE(forest.Fit(data_, opts).ok());
  for (size_t i : instances_) {
    const Vector x = data_.instance(i);
    const TreeShapExplanation fast = PathDependentTreeShap(forest, x);
    const Vector exact = ExactShapley(PathDependentGame(forest, x), x.size());
    ExpectNearVector(fast.phi, exact, kTol);
    EXPECT_NEAR(fast.base_value + Total(fast.phi), forest.PredictProba(x),
                kTol);
  }
}

TEST_F(TreeShapTest, PathDependentMarginMatchesExactShapleyOnGbm) {
  GradientBoostedTrees gbm;
  GbmOptions opts;
  opts.num_rounds = 25;
  ASSERT_TRUE(gbm.Fit(data_, opts).ok());
  for (size_t i : instances_) {
    const Vector x = data_.instance(i);
    const TreeShapExplanation fast = PathDependentTreeShapMargin(gbm, x);
    const CoalitionValue game = PathDependentGameMargin(gbm, x);
    const Vector exact = ExactShapley(game, x.size());
    ExpectNearVector(fast.phi, exact, kTol);
    // The full-coalition margin must sigmoid to the model probability.
    const double margin = fast.base_value + Total(fast.phi);
    EXPECT_NEAR(1.0 / (1.0 + std::exp(-margin)), gbm.PredictProba(x), kTol);
  }
}

TEST_F(TreeShapTest, InterventionalMatchesExactShapleyOnTree) {
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data_).ok());
  Matrix background(30, data_.num_features());
  for (size_t b = 0; b < background.rows(); ++b)
    for (size_t c = 0; c < background.cols(); ++c)
      background.At(b, c) = data_.x().At(b, c);
  for (size_t i : instances_) {
    const Vector x = data_.instance(i);
    const TreeShapExplanation fast =
        InterventionalTreeShap(tree, background, x);
    const Vector exact =
        ExactShapley(MaskingGame(tree, background, x), x.size());
    ExpectNearVector(fast.phi, exact, kTol);
    EXPECT_NEAR(fast.base_value + Total(fast.phi), tree.PredictProba(x),
                kTol);
  }
}

TEST_F(TreeShapTest, InterventionalMatchesExactShapleyOnForest) {
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 8;
  ASSERT_TRUE(forest.Fit(data_, opts).ok());
  Matrix background(20, data_.num_features());
  for (size_t b = 0; b < background.rows(); ++b)
    for (size_t c = 0; c < background.cols(); ++c)
      background.At(b, c) = data_.x().At(3 * b, c);
  for (size_t i : instances_) {
    const Vector x = data_.instance(i);
    const TreeShapExplanation fast =
        InterventionalTreeShap(forest, background, x);
    const Vector exact =
        ExactShapley(MaskingGame(forest, background, x), x.size());
    ExpectNearVector(fast.phi, exact, kTol);
    EXPECT_NEAR(fast.base_value + Total(fast.phi), forest.PredictProba(x),
                kTol);
  }
}

TEST_F(TreeShapTest, ShapExplainInstanceDispatchesTreesToTreeShap) {
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 8;
  ASSERT_TRUE(forest.Fit(data_, opts).ok());
  std::vector<size_t> keep;
  for (size_t i = 0; i < 25; ++i) keep.push_back(i);
  const Dataset background = data_.Subset(keep);
  const Vector x = data_.instance(100);
  Rng rng(5);
  const Vector via_dispatch =
      ShapExplainInstance(forest, background, x, 50, &rng);
  const TreeShapExplanation direct =
      InterventionalTreeShap(forest, background.x(), x);
  // Same code path — bit-identical, not merely close.
  ASSERT_EQ(via_dispatch.size(), direct.phi.size());
  for (size_t c = 0; c < via_dispatch.size(); ++c)
    EXPECT_EQ(via_dispatch[c], direct.phi[c]);
}

TEST_F(TreeShapTest, FairnessShapTreeFastPathMatchesGenericEngine) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  const Dataset data = CreditGen(cfg).Generate(500, 73);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  FairnessShapOptions fast_opts;  // kMask + fast path by default.
  FairnessShapOptions slow_opts = fast_opts;
  slow_opts.use_tree_fast_path = false;
  const FairnessShapReport fast =
      ExplainParityWithShapley(tree, data, fast_opts);
  const FairnessShapReport slow =
      ExplainParityWithShapley(tree, data, slow_opts);
  // d = 8 <= 10, so the generic engine is ExactShapley: both sides are
  // exact solutions of the same game.
  ExpectNearVector(fast.contributions, slow.contributions, kTol);
  EXPECT_DOUBLE_EQ(fast.full_gap, slow.full_gap);
  EXPECT_DOUBLE_EQ(fast.baseline_gap, slow.baseline_gap);
  EXPECT_NEAR(Total(fast.contributions), fast.full_gap - fast.baseline_gap,
              kTol);
}

// --- Batched engine ---------------------------------------------------
//
// The batch entry points promise bit-identity with the per-instance
// walkers, not closeness: every comparison below is EXPECT_EQ (0 ulp).

/// Reads one obs counter by name (0 if it never ticked).
uint64_t CounterValue(const std::string& name) {
  for (const auto& c : obs::SnapshotCounters()) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST_F(TreeShapTest, BatchMatchesPerInstanceBitForBitOnTree) {
  // 1300 rows so the batch spans a full 1024-instance tile plus a ragged
  // tail tile.
  const Dataset wide = CreditGen().Generate(1300, 72);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(wide).ok());
  const TreeShapBatchExplanation batch = TreeShapBatch(tree, wide.x());
  ASSERT_EQ(batch.phi.rows(), wide.size());
  ASSERT_EQ(batch.phi.cols(), wide.num_features());
  for (size_t i = 0; i < wide.size(); ++i) {
    const TreeShapExplanation one =
        PathDependentTreeShap(tree, wide.instance(i));
    EXPECT_EQ(batch.base_values[i], one.base_value) << "row " << i;
    for (size_t c = 0; c < wide.num_features(); ++c)
      EXPECT_EQ(batch.phi.At(i, c), one.phi[c]) << "row " << i << " f " << c;
  }
  // Warm arenas and caches must not change a single bit.
  const TreeShapBatchExplanation again = TreeShapBatch(tree, wide.x());
  for (size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(again.base_values[i], batch.base_values[i]);
    for (size_t c = 0; c < wide.num_features(); ++c)
      EXPECT_EQ(again.phi.At(i, c), batch.phi.At(i, c));
  }
}

TEST_F(TreeShapTest, BatchMatchesPerInstanceBitForBitOnForest) {
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 11;
  ASSERT_TRUE(forest.Fit(data_, opts).ok());
  const TreeShapBatchExplanation batch = TreeShapBatch(forest, data_.x());
  for (size_t i = 0; i < data_.size(); ++i) {
    const TreeShapExplanation one =
        PathDependentTreeShap(forest, data_.instance(i));
    EXPECT_EQ(batch.base_values[i], one.base_value) << "row " << i;
    for (size_t c = 0; c < data_.num_features(); ++c)
      EXPECT_EQ(batch.phi.At(i, c), one.phi[c]) << "row " << i << " f " << c;
  }
}

TEST_F(TreeShapTest, BatchMarginMatchesPerInstanceBitForBitOnGbm) {
  GradientBoostedTrees gbm;
  GbmOptions opts;
  opts.num_rounds = 20;
  ASSERT_TRUE(gbm.Fit(data_, opts).ok());
  const TreeShapBatchExplanation batch = TreeShapBatchMargin(gbm, data_.x());
  for (size_t i = 0; i < data_.size(); ++i) {
    const TreeShapExplanation one =
        PathDependentTreeShapMargin(gbm, data_.instance(i));
    EXPECT_EQ(batch.base_values[i], one.base_value) << "row " << i;
    for (size_t c = 0; c < data_.num_features(); ++c)
      EXPECT_EQ(batch.phi.At(i, c), one.phi[c]) << "row " << i << " f " << c;
  }
}

TEST_F(TreeShapTest, InterventionalBatchMatchesPerInstanceBitForBit) {
  DecisionTree tree;
  RandomForest forest;
  RandomForestOptions fopts;
  fopts.num_trees = 7;
  ASSERT_TRUE(tree.Fit(data_).ok());
  ASSERT_TRUE(forest.Fit(data_, fopts).ok());
  Matrix background(40, data_.num_features());
  for (size_t b = 0; b < background.rows(); ++b)
    for (size_t c = 0; c < background.cols(); ++c)
      background.At(b, c) = data_.x().At(2 * b, c);
  Matrix xs(120, data_.num_features());
  for (size_t i = 0; i < xs.rows(); ++i) xs.SetRow(i, data_.instance(i));
  const TreeShapBatchExplanation tb =
      InterventionalTreeShapBatch(tree, background, xs);
  const TreeShapBatchExplanation fb =
      InterventionalTreeShapBatch(forest, background, xs);
  for (size_t i = 0; i < xs.rows(); ++i) {
    const TreeShapExplanation t1 =
        InterventionalTreeShap(tree, background, xs.Row(i));
    const TreeShapExplanation f1 =
        InterventionalTreeShap(forest, background, xs.Row(i));
    EXPECT_EQ(tb.base_values[i], t1.base_value);
    EXPECT_EQ(fb.base_values[i], f1.base_value);
    for (size_t c = 0; c < xs.cols(); ++c) {
      EXPECT_EQ(tb.phi.At(i, c), t1.phi[c]) << "row " << i << " f " << c;
      EXPECT_EQ(fb.phi.At(i, c), f1.phi[c]) << "row " << i << " f " << c;
    }
  }
}

TEST_F(TreeShapTest, ThresholdedSweepMatchesLoopedWalksBitForBit) {
  // 1300 sampled rows span a full 1024-instance tile plus a ragged tail,
  // with signed non-uniform weights shaped like the fairness game's.
  const Dataset wide = CreditGen().Generate(1300, 75);
  const size_t d = wide.num_features();
  Vector z(d, 0.0);
  for (size_t i = 0; i < wide.size(); ++i)
    for (size_t c = 0; c < d; ++c) z[c] += wide.x().At(i, c);
  for (size_t c = 0; c < d; ++c) z[c] /= static_cast<double>(wide.size());
  std::vector<size_t> rows(wide.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Vector weights(rows.size());
  for (size_t i = 0; i < rows.size(); ++i)
    weights[i] = (wide.group(i) == 0 ? 1.0 : -1.0) /
                 (1.0 + static_cast<double>(i % 7));
  // Depth 6 keeps every path within the leaf-memo budget; depth 9 with a
  // tiny leaf floor pushes paths past it, exercising the unmemoized branch.
  for (size_t depth : {size_t{6}, size_t{9}}) {
    DecisionTreeOptions opts;
    opts.max_depth = depth;
    opts.min_samples_leaf = 2;
    DecisionTree tree;
    ASSERT_TRUE(tree.Fit(wide, opts).ok());
    const Vector batched = InterventionalTreeShapThresholded(
        tree, wide.x(), rows, weights, z, tree.threshold());
    const Vector looped = InterventionalTreeShapThresholdedLooped(
        tree, wide.x(), rows, weights, z, tree.threshold());
    ASSERT_EQ(batched.size(), d);
    ASSERT_EQ(looped.size(), d);
    for (size_t c = 0; c < d; ++c)
      EXPECT_EQ(batched[c], looped[c]) << "depth " << depth << " f " << c;
    // Warm arenas and leaf memos must not change a single bit.
    const Vector again = InterventionalTreeShapThresholded(
        tree, wide.x(), rows, weights, z, tree.threshold());
    for (size_t c = 0; c < d; ++c)
      EXPECT_EQ(again[c], batched[c]) << "depth " << depth << " f " << c;
  }
}

#ifndef XFAIR_OBS_DISABLED
TEST_F(TreeShapTest, BatchSteadyStateGrowsNoArenas) {
  SetParallelThreads(1);  // One worker arena, deterministic accounting.
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 9;
  ASSERT_TRUE(forest.Fit(data_, opts).ok());
  Matrix phi;
  Vector base;
  // Two warmup calls: the first sizes the arena, the second proves the
  // shape converged.
  TreeShapBatchInto(forest, data_.x(), &phi, &base);
  TreeShapBatchInto(forest, data_.x(), &phi, &base);
  const uint64_t grows = CounterValue("tree_shap/arena_grows");
  const uint64_t reuses = CounterValue("tree_shap/arena_reuses");
  TreeShapBatchInto(forest, data_.x(), &phi, &base);
  EXPECT_EQ(CounterValue("tree_shap/arena_grows") - grows, 0u)
      << "steady-state batch call grew an arena";
  EXPECT_GE(CounterValue("tree_shap/arena_reuses") - reuses, 1u);
  SetParallelThreads(0);
}

TEST_F(TreeShapTest, ThresholdedSweepSteadyStateGrowsNoArenas) {
  SetParallelThreads(1);  // One worker arena, deterministic accounting.
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data_).ok());
  const size_t d = data_.num_features();
  Vector z(d, 0.0);
  for (size_t i = 0; i < data_.size(); ++i)
    for (size_t c = 0; c < d; ++c) z[c] += data_.x().At(i, c);
  for (size_t c = 0; c < d; ++c) z[c] /= static_cast<double>(data_.size());
  std::vector<size_t> rows(data_.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const Vector weights(rows.size(), 1.0 / static_cast<double>(rows.size()));
  const auto sweep = [&] {
    return InterventionalTreeShapThresholded(tree, data_.x(), rows, weights,
                                             z, tree.threshold());
  };
  // Two warmup calls: the first sizes the arenas, the second proves the
  // shape converged.
  sweep();
  sweep();
  const uint64_t grows = CounterValue("tree_shap/arena_grows");
  const uint64_t reuses = CounterValue("tree_shap/arena_reuses");
  sweep();
  EXPECT_EQ(CounterValue("tree_shap/arena_grows") - grows, 0u)
      << "steady-state thresholded sweep grew an arena";
  EXPECT_GE(CounterValue("tree_shap/arena_reuses") - reuses, 1u);
  SetParallelThreads(0);
}

TEST_F(TreeShapTest, NodeCacheBuildsOncePerFit) {
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data_).ok());
  const uint64_t builds = CounterValue("tree_shap/node_cache_builds");
  for (int r = 0; r < 3; ++r) {
    (void)PathDependentTreeShap(tree, data_.instance(0));
  }
  EXPECT_EQ(CounterValue("tree_shap/node_cache_builds") - builds, 1u)
      << "same fitted model should convert to ShapNodes exactly once";
  // Refitting invalidates the cached conversion.
  ASSERT_TRUE(tree.Fit(data_).ok());
  (void)PathDependentTreeShap(tree, data_.instance(0));
  EXPECT_EQ(CounterValue("tree_shap/node_cache_builds") - builds, 2u);
}
#endif  // XFAIR_OBS_DISABLED

// --- KD-tree ----------------------------------------------------------

/// Brute-force (squared distance, index) reference over matrix rows.
std::vector<size_t> BruteKnn(const Matrix& pts, const double* q, size_t k) {
  std::vector<std::pair<double, size_t>> dist(pts.rows());
  for (size_t i = 0; i < pts.rows(); ++i) {
    double acc = 0.0;
    for (size_t c = 0; c < pts.cols(); ++c) {
      const double diff = pts.At(i, c) - q[c];
      acc += diff * diff;
    }
    dist[i] = {acc, i};
  }
  std::sort(dist.begin(), dist.end());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  return out;
}

TEST(KdTree, MatchesBruteForceIncludingDuplicateRowTies) {
  // Duplicate rows force exact-distance ties: the index must order them
  // by ascending row id exactly as the stable brute force does.
  Matrix pts(7, 2);
  const double raw[7][2] = {{0, 0}, {1, 0}, {1, 0}, {0, 1},
                            {1, 0}, {2, 2}, {0, 0}};
  for (size_t r = 0; r < 7; ++r)
    for (size_t c = 0; c < 2; ++c) pts.At(r, c) = raw[r][c];
  const KdTree kd(pts, /*leaf_size=*/1);
  const double q[2] = {1.0, 0.0};
  EXPECT_EQ(kd.KNearest(q, 4), (std::vector<size_t>{1, 2, 4, 0}));
  for (size_t k = 1; k <= 7; ++k) {
    EXPECT_EQ(kd.KNearest(q, k), BruteKnn(pts, q, k)) << "k=" << k;
  }
  // Self-queries: the row itself is distance zero and must come first.
  for (size_t r = 0; r < 7; ++r) {
    const auto nn = kd.KNearest(pts.RowPtr(r), 7);
    EXPECT_EQ(nn, BruteKnn(pts, pts.RowPtr(r), 7)) << "row " << r;
  }
}

TEST(KdTree, AllDuplicatePointsDegenerateToOneLeaf) {
  // Zero spread in every dimension: the build must keep a single leaf
  // (split_dim stays -1) instead of recursing forever, and queries must
  // return rows in ascending id order (all distances tie).
  Matrix pts(9, 3);
  for (size_t r = 0; r < 9; ++r)
    for (size_t c = 0; c < 3; ++c) pts.At(r, c) = 4.25;
  const KdTree kd(pts, /*leaf_size=*/2);
  const double q[3] = {4.25, 4.25, 4.25};
  for (size_t k = 1; k <= 9; ++k) {
    EXPECT_EQ(kd.KNearest(q, k), BruteKnn(pts, q, k)) << "k=" << k;
  }
  const double far[3] = {-100.0, 0.0, 50.0};
  EXPECT_EQ(kd.KNearest(far, 9), BruteKnn(pts, far, 9));
}

TEST(KdTree, ZeroVarianceDimensionsNeverSplit) {
  // Only dimension 1 varies; dimensions 0 and 2 are constant. Splits must
  // all land on dimension 1 and queries must still match brute force,
  // including ties between rows identical in the varying dimension.
  Matrix pts(12, 3);
  const double vary[12] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 1};
  for (size_t r = 0; r < 12; ++r) {
    pts.At(r, 0) = 7.0;
    pts.At(r, 1) = vary[r];
    pts.At(r, 2) = -2.0;
  }
  const KdTree kd(pts, /*leaf_size=*/1);
  for (size_t qi : {0u, 5u, 11u}) {
    for (size_t k = 1; k <= 12; ++k) {
      EXPECT_EQ(kd.KNearest(pts.RowPtr(qi), k),
                BruteKnn(pts, pts.RowPtr(qi), k))
          << "query " << qi << " k=" << k;
    }
  }
  const double between[3] = {7.0, 4.5, -2.0};
  EXPECT_EQ(kd.KNearest(between, 12), BruteKnn(pts, between, 12));
}

TEST(KdTree, MatchesBruteForceOnRealisticData) {
  const Dataset data = CreditGen().Generate(400, 81);
  const KdTree kd(data.x());
  for (size_t qi : {0u, 17u, 200u, 399u}) {
    const double* q = data.x().RowPtr(qi);
    for (size_t k : {1u, 5u, 32u, 400u}) {
      EXPECT_EQ(kd.KNearest(q, k), BruteKnn(data.x(), q, k))
          << "query " << qi << " k=" << k;
    }
  }
}

TEST(KdTree, KnnClassifierIndexAgreesWithBruteForceScan) {
  const Dataset data = CreditGen().Generate(350, 82);
  KnnClassifier knn(5);
  ASSERT_TRUE(knn.Fit(data).ok());
  const Dataset probe = CreditGen().Generate(40, 83);
  for (size_t i = 0; i < probe.size(); ++i) {
    const Vector x = probe.instance(i);
    for (size_t k : {1u, 5u, 25u}) {
      EXPECT_EQ(knn.Neighbors(x, k), knn.NeighborsBruteForce(x, k))
          << "probe " << i << " k=" << k;
    }
  }
  EXPECT_EQ(knn.Neighbors(probe.instance(0), data.size()),
            knn.NeighborsBruteForce(probe.instance(0), data.size()));
}

// --- Gopher bitset lattice engine -------------------------------------

// The vertical-bitset engine must be bit-identical (0 ulp) to the looped
// BinTable::Matches oracle at every depth, including ragged n % 64 != 0
// (400 = 6*64 + 16) and exact multiples (448 = 7*64).
TEST(GopherBitsetEngine, MatchesLoopedOracleBitForBitAtEveryDepth) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  for (size_t n : {400u, 448u}) {
    const Dataset data = CreditGen(cfg).Generate(n, 91);
    LogisticRegression model;
    ASSERT_TRUE(model.Fit(data).ok());
    for (size_t depth : {1u, 2u, 3u, 4u}) {
      GopherOptions engine_opts;
      engine_opts.max_conditions = depth;
      engine_opts.min_support = 0.05;  // Keeps depth 4 tractable.
      engine_opts.optimistic_prune = false;  // Exact examined counts.
      GopherOptions oracle_opts = engine_opts;
      oracle_opts.use_bitset_engine = false;
      const auto fast = ExplainUnfairnessByPatterns(model, data, engine_opts);
      const auto slow = ExplainUnfairnessByPatterns(model, data, oracle_opts);
      ASSERT_TRUE(fast.ok() && slow.ok());
      EXPECT_EQ(fast->patterns_examined, slow->patterns_examined)
          << "n=" << n << " depth=" << depth;
      EXPECT_EQ(fast->original_gap, slow->original_gap);
      ASSERT_EQ(fast->patterns.size(), slow->patterns.size());
      for (size_t i = 0; i < fast->patterns.size(); ++i) {
        EXPECT_EQ(fast->patterns[i].description,
                  slow->patterns[i].description);
        EXPECT_EQ(fast->patterns[i].support, slow->patterns[i].support);
        EXPECT_EQ(fast->patterns[i].estimated_gap_change,
                  slow->patterns[i].estimated_gap_change);
        EXPECT_EQ(fast->patterns[i].verified_gap_change,
                  slow->patterns[i].verified_gap_change);
      }
    }
  }
}

// The optimistic bound only skips subtrees that provably cannot reach the
// top-k: the reported patterns are identical with pruning on and off, and
// pruning never examines more.
TEST(GopherBitsetEngine, OptimisticPruneKeepsTopKExact) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  const Dataset data = CreditGen(cfg).Generate(500, 92);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  GopherOptions pruned_opts;
  pruned_opts.max_conditions = 3;
  pruned_opts.min_support = 0.03;
  pruned_opts.optimistic_prune = true;
  GopherOptions full_opts = pruned_opts;
  full_opts.optimistic_prune = false;
  const auto pruned = ExplainUnfairnessByPatterns(model, data, pruned_opts);
  const auto full = ExplainUnfairnessByPatterns(model, data, full_opts);
  ASSERT_TRUE(pruned.ok() && full.ok());
  EXPECT_LE(pruned->patterns_examined, full->patterns_examined);
  EXPECT_EQ(full->bound_pruned, 0u);
  ASSERT_EQ(pruned->patterns.size(), full->patterns.size());
  for (size_t i = 0; i < pruned->patterns.size(); ++i) {
    EXPECT_EQ(pruned->patterns[i].description, full->patterns[i].description);
    EXPECT_EQ(pruned->patterns[i].support, full->patterns[i].support);
    EXPECT_EQ(pruned->patterns[i].estimated_gap_change,
              full->patterns[i].estimated_gap_change);
  }
}

// Regression for the dropped dense pair table: a schema with num_sids >
// 4096 (the old table's hard cap, where it fell back to per-candidate row
// scans after sizing a num_sids^2 buffer) still routes through the
// lattice engine and matches the oracle exactly.
TEST(GopherBitsetEngine, HighCardinalitySchemaStaysOnFastPath) {
  // Two low-cardinality "real" features plus enough continuous noise
  // columns to push num_sids past 4096 at 16 bins each.
  const size_t n = 450, noise = 258;
  Rng rng(93);
  Matrix x(n, 2 + noise);
  std::vector<int> labels(n);
  std::vector<int> groups(n);
  for (size_t i = 0; i < n; ++i) {
    const int g = static_cast<int>(i % 2);
    groups[i] = g;
    x.At(i, 0) = static_cast<double>(g);
    x.At(i, 1) = static_cast<double>(rng.Below(3));
    for (size_t f = 0; f < noise; ++f) x.At(i, 2 + f) = rng.Uniform();
    const double z = 0.8 * x.At(i, 1) - 0.7 * static_cast<double>(g) - 0.3;
    labels[i] = z + 0.5 * rng.Normal() > 0.0 ? 1 : 0;
  }
  std::vector<FeatureSpec> specs(2 + noise);
  for (size_t f = 0; f < specs.size(); ++f)
    specs[f].name = "f" + std::to_string(f);
  const Dataset data(Schema(std::move(specs), /*sensitive_index=*/0),
                     std::move(x), std::move(labels), std::move(groups));
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  GopherOptions engine_opts;
  engine_opts.bins = 16;         // Noise columns get 16 quantile bins...
  engine_opts.min_support = 0.2; // ...all far below the support floor.
  engine_opts.optimistic_prune = false;
  GopherOptions oracle_opts = engine_opts;
  oracle_opts.use_bitset_engine = false;
  Discretizer disc(data, engine_opts.bins);
  size_t num_sids = 0;
  for (size_t f = 0; f < data.num_features(); ++f) num_sids += disc.NumBins(f);
  ASSERT_GT(num_sids, 4096u);
  const auto fast = ExplainUnfairnessByPatterns(model, data, engine_opts);
  const auto slow = ExplainUnfairnessByPatterns(model, data, oracle_opts);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_EQ(fast->patterns_examined, slow->patterns_examined);
  ASSERT_EQ(fast->patterns.size(), slow->patterns.size());
  for (size_t i = 0; i < fast->patterns.size(); ++i) {
    EXPECT_EQ(fast->patterns[i].support, slow->patterns[i].support);
    EXPECT_EQ(fast->patterns[i].estimated_gap_change,
              slow->patterns[i].estimated_gap_change);
  }
}

// --- Neighbor-seeded growing spheres ----------------------------------

TEST(SeededCounterfactuals, StayValidAndFeasible) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  const Dataset data = CreditGen(cfg).Generate(150, 95);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  CounterfactualConfig config;
  config.seed_radius_from_neighbors = true;
  Rng rng(96);
  const auto group = CounterfactualsForNegatives(model, data, config, &rng);
  ASSERT_FALSE(group.indices.empty());
  size_t valid = 0;
  for (size_t k = 0; k < group.indices.size(); ++k) {
    const auto& r = group.results[k];
    if (!r.valid) continue;
    ++valid;
    const Vector& x = data.instance(group.indices[k]);
    EXPECT_EQ(model.Predict(r.counterfactual), config.target_class);
    // Immutables pinned, directional features one-way (CreditGen schema).
    EXPECT_DOUBLE_EQ(r.counterfactual[0], x[0]);
    EXPECT_DOUBLE_EQ(r.counterfactual[1], x[1]);
    EXPECT_GE(r.counterfactual[2], x[2]);
    EXPECT_LE(r.counterfactual[5], x[5]);
  }
  EXPECT_GT(valid, group.indices.size() / 2);
}

}  // namespace
}  // namespace xfair
