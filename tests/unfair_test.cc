// Tests for src/unfair: the explaining-unfairness methods of paper §IV —
// burden/NAWB, PreCoF, FACTS, GLOBE-CE, CE trees, AReS, fairness Shapley,
// causal-path decomposition, Gopher, probabilistic contrastive CFs, and
// causal recourse. Where the generator plants a known bias mechanism, the
// tests assert the method recovers it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/data/generators.h"
#include "src/model/decision_tree.h"
#include "src/unfair/ares.h"
#include "src/unfair/burden.h"
#include "src/unfair/causal_path.h"
#include "src/unfair/cet.h"
#include "src/unfair/contrastive.h"
#include "src/unfair/facts.h"
#include "src/unfair/fairness_shap.h"
#include "src/unfair/globece.h"
#include "src/unfair/gopher.h"
#include "src/unfair/precof.h"
#include "src/unfair/recourse.h"
#include "src/unfair/slice_search.h"

namespace xfair {
namespace {

struct BiasedCredit {
  Dataset data;
  LogisticRegression model;

  static BiasedCredit Make(double shift = 1.0, uint64_t seed = 77,
                           size_t n = 900) {
    BiasConfig cfg;
    cfg.score_shift = shift;
    BiasedCredit f{CreditGen(cfg).Generate(n, seed), {}};
    XFAIR_CHECK(f.model.Fit(f.data).ok());
    return f;
  }
};

// --- burden / NAWB ---

TEST(Burden, BiasedModelBurdensProtectedGroupMore) {
  auto f = BiasedCredit::Make(1.2);
  Rng rng(1);
  auto report =
      ComputeBurden(f.model, f.data, BurdenScope::kAllNegatives, {}, &rng);
  EXPECT_GT(report.counterfactuals_protected, 10u);
  EXPECT_GT(report.counterfactuals_non_protected, 10u);
  EXPECT_GT(report.burden_gap, 0.0)
      << "protected group should need larger changes";
}

TEST(Burden, ScopeRestrictsToFalseNegatives) {
  auto f = BiasedCredit::Make();
  Rng rng(2);
  auto all =
      ComputeBurden(f.model, f.data, BurdenScope::kAllNegatives, {}, &rng);
  auto fn =
      ComputeBurden(f.model, f.data, BurdenScope::kFalseNegatives, {}, &rng);
  EXPECT_LE(fn.counterfactuals_protected, all.counterfactuals_protected);
  EXPECT_LE(fn.counterfactuals_non_protected,
            all.counterfactuals_non_protected);
}

TEST(Burden, NawbSeparatesGroupsUnderBias) {
  auto f = BiasedCredit::Make(1.2);
  Rng rng(3);
  auto report = ComputeNawb(f.model, f.data, {}, &rng);
  EXPECT_GT(report.nawb_protected, 0.0);
  EXPECT_GT(report.nawb_gap, 0.0);
}

TEST(Burden, FairWorldHasSmallGap) {
  BiasConfig fair;
  fair.score_shift = 0.0;
  fair.label_bias = 0.0;
  fair.proxy_strength = 0.0;
  fair.qualification_gap = 0.0;
  Dataset d = CreditGen(fair).Generate(900, 5);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(d).ok());
  Rng rng(4);
  auto report = ComputeBurden(lr, d, BurdenScope::kAllNegatives, {}, &rng);
  EXPECT_LT(std::fabs(report.burden_gap), 0.15);
}

// --- PreCoF ---

TEST(Precof, ExplicitBiasFlagsSensitiveAttribute) {
  // Model with a huge direct penalty on the protected attribute: flipping
  // it is the cheapest counterfactual, so its change frequency for the
  // protected group should dominate.
  BiasConfig cfg;
  cfg.score_shift = 0.3;
  Dataset d = CreditGen(cfg).Generate(700, 6);
  LogisticRegression direct;
  Vector w(d.num_features(), 0.0);
  w[0] = -6.0;   // protected
  w[2] = 0.25;   // income
  direct.SetParameters(w, 0.0);
  Rng rng(5);
  auto report = PrecofExplicitBias(direct, d, &rng);
  ASSERT_GT(report.counterfactuals_protected, 5u);
  // For protected negatives, the sensitive attribute flips almost always.
  EXPECT_GT(report.change_freq_protected[0], 0.6);
  // For the non-protected group flipping it would hurt: near zero.
  EXPECT_LT(report.change_freq_non_protected[0], 0.2);
  EXPECT_EQ(report.ranked_features[0], 0u);
}

TEST(Precof, ImplicitBiasSurfacesProxyRoutes) {
  BiasConfig cfg;
  cfg.proxy_strength = 0.9;
  cfg.score_shift = 0.8;
  Dataset d = CreditGen(cfg).Generate(900, 7);
  Rng rng(6);
  auto report = PrecofImplicitBias(d, &rng);
  // The blind dataset has 7 features (sensitive dropped); frequencies are
  // well-defined probabilities.
  ASSERT_EQ(report.change_freq_protected.size(), 7u);
  for (size_t c = 0; c < 7; ++c) {
    EXPECT_GE(report.change_freq_protected[c], 0.0);
    EXPECT_LE(report.change_freq_protected[c], 1.0);
  }
  EXPECT_GT(report.counterfactuals_protected, 10u);
  // Ranking is by descending gap.
  for (size_t k = 1; k < report.ranked_features.size(); ++k) {
    EXPECT_GE(report.frequency_gap[report.ranked_features[k - 1]],
              report.frequency_gap[report.ranked_features[k]]);
  }
}

// --- FACTS ---

TEST(Facts, FindsSubgroupsAndRanksByUnfairness) {
  auto f = BiasedCredit::Make(1.0);
  FactsOptions opts;
  opts.top_k = 5;
  auto report = RunFacts(f.model, f.data, opts);
  ASSERT_GT(report.subgroups_examined, 0u);
  ASSERT_FALSE(report.ranked_subgroups.empty());
  for (size_t k = 1; k < report.ranked_subgroups.size(); ++k) {
    EXPECT_GE(report.ranked_subgroups[k - 1].unfairness,
              report.ranked_subgroups[k].unfairness);
  }
  for (const auto& sg : report.ranked_subgroups) {
    EXPECT_GE(sg.affected_protected, opts.min_group_members);
    EXPECT_GE(sg.affected_non_protected, opts.min_group_members);
    EXPECT_FALSE(sg.description.empty());
    EXPECT_GE(sg.best_effectiveness_protected, 0.0);
    EXPECT_LE(sg.best_effectiveness_protected, 1.0);
  }
}

TEST(Facts, BiasedModelShowsRecourseBias) {
  auto f = BiasedCredit::Make(1.3);
  auto report = RunFacts(f.model, f.data, {});
  // With planted bias, the same actions work better for G-.
  EXPECT_GT(report.overall_effectiveness_gap, 0.0);
  EXPECT_GE(report.overall_choice_gap, 0.0);
}

TEST(Facts, EffectivenessRespectsDefinition) {
  // A model that favors exactly income > threshold: the action
  // "income := high" must have effectiveness 1 for everyone it applies to.
  Dataset d = CreditGen().Generate(400, 8);
  LogisticRegression income_only;
  Vector w(d.num_features(), 0.0);
  w[2] = 4.0;
  income_only.SetParameters(w, -20.0);  // favorable iff income > 5.
  auto report = RunFacts(income_only, d, {});
  // Best effectiveness for both groups should be ~1 via the income action.
  if (!report.ranked_subgroups.empty()) {
    const auto& top = report.ranked_subgroups.front();
    EXPECT_GE(std::max(top.best_effectiveness_protected,
                       top.best_effectiveness_non_protected),
              0.9);
  }
  EXPECT_NEAR(report.overall_effectiveness_gap, 0.0, 0.1)
      << "income-only model gives both groups the same recourse";
}

// --- GLOBE-CE ---

TEST(GlobeCe, DirectionIsUnitAndCoversGroups) {
  auto f = BiasedCredit::Make();
  Rng rng(9);
  GlobeCeOptions opts;
  auto report = FitGlobeCe(f.model, f.data, opts, &rng);
  EXPECT_NEAR(Norm2(report.protected_group.direction), 1.0, 1e-9);
  EXPECT_NEAR(Norm2(report.non_protected_group.direction), 1.0, 1e-9);
  EXPECT_GT(report.protected_group.coverage, 0.5);
  EXPECT_GT(report.non_protected_group.coverage, 0.5);
}

TEST(GlobeCe, BiasedModelCostsProtectedMore) {
  auto f = BiasedCredit::Make(1.3);
  Rng rng(10);
  auto report = FitGlobeCe(f.model, f.data, {}, &rng);
  EXPECT_GT(report.cost_gap, 0.0)
      << "protected group should need larger scales along its direction";
}

TEST(GlobeCe, ImmutableCoordinatesStayZeroInTranslation) {
  auto f = BiasedCredit::Make();
  Rng rng(11);
  auto report = FitGlobeCe(f.model, f.data, {}, &rng);
  // Directions may have components on immutables (they are projected away
  // at translation time); verify translation never moves them by checking
  // scales found imply flips with unchanged immutables. Indirect check:
  // re-verify a member flip manually.
  const auto& dir = report.protected_group.direction;
  ASSERT_EQ(dir.size(), f.data.num_features());
}

// --- counterfactual explanation tree ---

TEST(Cet, TreeAssignsEffectiveActions) {
  auto f = BiasedCredit::Make();
  CetOptions opts;
  auto report = BuildCounterfactualTree(f.model, f.data, opts);
  ASSERT_FALSE(report.nodes.empty());
  EXPECT_GE(report.num_leaves, 1u);
  EXPECT_GT(report.effectiveness_protected +
                report.effectiveness_non_protected,
            0.5);
  EXPECT_FALSE(report.ToString(f.data.schema()).empty());
}

TEST(Cet, ConsistentActionsForSameLeaf) {
  auto f = BiasedCredit::Make();
  auto report = BuildCounterfactualTree(f.model, f.data, {});
  // Two identical inputs route identically.
  const Vector x = f.data.instance(3);
  const auto& a1 = report.ActionFor(x);
  const auto& a2 = report.ActionFor(x);
  EXPECT_EQ(&a1, &a2);
}

TEST(Cet, DepthZeroGivesSingleLeaf) {
  auto f = BiasedCredit::Make();
  CetOptions opts;
  opts.max_depth = 0;
  auto report = BuildCounterfactualTree(f.model, f.data, opts);
  EXPECT_EQ(report.num_leaves, 1u);
  EXPECT_EQ(report.nodes.size(), 1u);
}

// --- AReS ---

TEST(Ares, SelectsRulesWithinBudget) {
  auto f = BiasedCredit::Make();
  AresOptions opts;
  opts.max_rules = 4;
  auto report = BuildRecourseSet(f.model, f.data, opts);
  EXPECT_LE(report.num_rules, 4u);
  EXPECT_GT(report.num_rules, 0u);
  EXPECT_GT(report.total_recourse_rate, 0.2);
  for (const auto& rule : report.rules) {
    EXPECT_GE(rule.coverage, opts.min_rule_coverage);
    EXPECT_GT(rule.effectiveness, 0.0);
    EXPECT_FALSE(rule.description.empty());
  }
}

TEST(Ares, GreedyRulesHaveDecreasingMarginalValue) {
  auto f = BiasedCredit::Make();
  auto report = BuildRecourseSet(f.model, f.data, {});
  // Interpretability proxies are populated.
  EXPECT_GT(report.mean_rule_width, 0.0);
}

// --- fairness Shapley ---

TEST(FairnessShap, MaskModeEfficiencyHolds) {
  auto f = BiasedCredit::Make();
  FairnessShapOptions opts;
  opts.mode = FairnessShapMode::kMask;
  auto report = ExplainParityWithShapley(f.model, f.data, opts);
  double sum = 0.0;
  for (double c : report.contributions) sum += c;
  EXPECT_NEAR(sum, report.full_gap - report.baseline_gap, 1e-9);
  EXPECT_NEAR(report.baseline_gap, 0.0, 1e-12)
      << "empty coalition treats groups identically";
}

TEST(FairnessShap, SensitiveFeatureGetsLargeShare) {
  // Model that discriminates directly: the sensitive feature must carry
  // the dominant share of the parity gap.
  Dataset d = CreditGen().Generate(800, 12);
  LogisticRegression direct;
  Vector w(d.num_features(), 0.0);
  w[0] = -4.0;
  w[2] = 0.5;
  direct.SetParameters(w, -1.0);
  FairnessShapOptions opts;
  auto report = ExplainParityWithShapley(direct, d, opts);
  EXPECT_EQ(report.ranked_features[0], 0u);
  EXPECT_GT(report.contributions[0], 0.0);
}

TEST(FairnessShap, RetrainModeRunsAndRanks) {
  // Use a narrow dataset to keep 2^d retrains cheap.
  Dataset full = CreditGen().Generate(300, 13);
  // Keep protected, income, zip_risk.
  Dataset d = full;
  for (int c = static_cast<int>(full.num_features()) - 1; c >= 0; --c) {
    if (c == 0 || c == 2 || c == 7) continue;
    d = d.WithoutFeature(static_cast<size_t>(c));
  }
  FairnessShapOptions opts;
  opts.mode = FairnessShapMode::kRetrain;
  LogisticRegression unused;
  ASSERT_TRUE(unused.Fit(d).ok());
  auto report = ExplainParityWithShapley(unused, d, opts);
  EXPECT_EQ(report.contributions.size(), 3u);
  EXPECT_DOUBLE_EQ(report.baseline_gap, 0.0);
  double sum = 0.0;
  for (double c : report.contributions) sum += c;
  EXPECT_NEAR(sum, report.full_gap, 1e-9);
}

/// FairnessShapBatch and the batched sweep promise bit-identity with their
/// reference paths, not closeness — compare every report field with
/// EXPECT_EQ (0 ulp).
void ExpectReportsBitIdentical(const FairnessShapReport& a,
                               const FairnessShapReport& b) {
  ASSERT_EQ(a.contributions.size(), b.contributions.size());
  for (size_t c = 0; c < a.contributions.size(); ++c)
    EXPECT_EQ(a.contributions[c], b.contributions[c]) << "feature " << c;
  EXPECT_EQ(a.full_gap, b.full_gap);
  EXPECT_EQ(a.baseline_gap, b.baseline_gap);
  EXPECT_EQ(a.ranked_features, b.ranked_features);
  EXPECT_EQ(a.feature_names, b.feature_names);
}

TEST(FairnessShap, TreeBatchedSweepMatchesLoopedReferenceBitForBit) {
  BiasConfig cfg;
  cfg.score_shift = 1.0;
  const Dataset data = CreditGen(cfg).Generate(1300, 79);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  FairnessShapOptions batched;  // kMask + tree fast path + batched sweep.
  batched.background_size = 130;  // sample = all 1300 rows -> ragged tiles.
  FairnessShapOptions looped = batched;
  looped.use_batched_sweep = false;
  ExpectReportsBitIdentical(ExplainParityWithShapley(tree, data, batched),
                            ExplainParityWithShapley(tree, data, looped));
}

TEST(FairnessShap, BatchSliceMatchesSubsetExplainBitForBit) {
  auto f = BiasedCredit::Make(1.0, 81, 1100);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(f.data).ok());
  std::vector<size_t> slice;
  for (size_t i = 0; i < f.data.size(); ++i)
    if (i % 3 != 1) slice.push_back(i);  // Non-contiguous 2/3 slice.
  const Dataset subset = f.data.Subset(slice);
  FairnessShapOptions opts;
  // Tree fast path: slice view vs materialized subset through the batched
  // thresholded sweep.
  ExpectReportsBitIdentical(FairnessShapBatch(tree, f.data, slice, opts),
                            ExplainParityWithShapley(tree, subset, opts));
  // Generic coalition-tiled path (logistic model, d <= 10 exact table).
  ExpectReportsBitIdentical(FairnessShapBatch(f.model, f.data, slice, opts),
                            ExplainParityWithShapley(f.model, subset, opts));
}

TEST(FairnessShap, BatchSingleGroupSliceReturnsZeroSentinel) {
  auto f = BiasedCredit::Make();
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(f.data).ok());
  std::vector<size_t> slice;
  for (size_t i = 0; i < f.data.size(); ++i)
    if (f.data.group(i) == 0) slice.push_back(i);
  ASSERT_FALSE(slice.empty());
  // Both the tree fast path and the generic path must hit the sentinel
  // before any 1/count[g] weight is formed. Ranked order is not pinned:
  // all-zero contributions sort arbitrarily.
  for (const Model* m : {static_cast<const Model*>(&tree),
                         static_cast<const Model*>(&f.model)}) {
    const auto report = FairnessShapBatch(*m, f.data, slice, {});
    EXPECT_EQ(report.full_gap, 0.0);
    EXPECT_EQ(report.baseline_gap, 0.0);
    ASSERT_EQ(report.contributions.size(), f.data.num_features());
    for (double c : report.contributions) EXPECT_EQ(c, 0.0);
    EXPECT_EQ(report.ranked_features.size(), f.data.num_features());
  }
}

// --- causal path decomposition ---

TEST(CausalPath, EnumeratesAllPathsFromSensitive) {
  CausalWorld world = MakeCreditWorld(1.0);
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.6, 0.4, -0.5, 0.0}, -3.5);
  auto report = DecomposeDisparityByPaths(lr, world, 2000, 14);
  // Paths: S->income, S->income->savings, S->income->debt, S->zip.
  EXPECT_EQ(report.paths.size(), 4u);
}

TEST(CausalPath, ExplainedDisparityMatchesTotalForNearLinearModel) {
  CausalWorld world = MakeCreditWorld(1.0);
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.3, 0.2, -0.25, 0.0}, -1.5);  // Gentle slopes.
  auto report = DecomposeDisparityByPaths(lr, world, 4000, 15);
  EXPECT_GT(report.total_disparity, 0.0);
  EXPECT_NEAR(report.explained_disparity, report.total_disparity,
              0.25 * std::fabs(report.total_disparity) + 0.01);
}

TEST(CausalPath, ProxyOnlyModelBlamesProxyPath) {
  CausalWorld world = MakeCreditWorld(1.0);
  // Model that uses only zip_risk.
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.0, 0.0, 0.0, 0.8}, -3.0);
  auto report = DecomposeDisparityByPaths(lr, world, 3000, 16);
  ASSERT_FALSE(report.paths.empty());
  EXPECT_EQ(report.paths[0].description, "S -> zip_risk");
  // Income paths contribute nothing to this model.
  for (const auto& p : report.paths) {
    if (p.description != "S -> zip_risk") {
      EXPECT_NEAR(p.score_contribution, 0.0, 1e-9);
    }
  }
}

// --- Gopher ---

TEST(Gopher, FindsGapReducingPatterns) {
  auto f = BiasedCredit::Make(1.0, 78, 700);
  GopherOptions opts;
  opts.top_k = 3;
  auto report = ExplainUnfairnessByPatterns(f.model, f.data, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->original_gap, 0.0);
  ASSERT_FALSE(report->patterns.empty());
  EXPECT_GT(report->patterns_examined, report->patterns.size());
  // Top pattern's estimated effect is gap-reducing.
  EXPECT_LT(report->patterns.front().estimated_gap_change, 0.0);
  for (const auto& p : report->patterns) {
    EXPECT_GE(p.support, 1u);
    EXPECT_FALSE(p.description.empty());
  }
}

TEST(Gopher, VerifiedChangesCorrelateWithEstimates) {
  auto f = BiasedCredit::Make(1.0, 79, 600);
  GopherOptions opts;
  opts.top_k = 4;
  auto report = ExplainUnfairnessByPatterns(f.model, f.data, opts);
  ASSERT_TRUE(report.ok());
  size_t verified = 0, same_sign = 0;
  for (const auto& p : report->patterns) {
    if (!p.verified) continue;
    ++verified;
    if (p.estimated_gap_change * p.verified_gap_change > 0.0 ||
        std::fabs(p.verified_gap_change) < 0.02) {
      ++same_sign;
    }
  }
  ASSERT_GT(verified, 0u);
  EXPECT_GE(same_sign * 2, verified)
      << "at least half the verified patterns should agree in direction";
}

// --- worst-slice subgroup search ---

TEST(WorstSlice, RecoversPlantedDisadvantagedGroup) {
  auto f = BiasedCredit::Make(1.0, 85, 700);
  // Restricted to the sensitive column only, the worst "slice" must be
  // the planted disadvantaged group itself.
  SliceSearchOptions opts;
  opts.columns = {0};
  opts.max_conditions = 1;
  opts.bins = 2;
  opts.top_k = 2;
  const WorstSliceReport r = WorstSliceSearch(f.model, f.data, opts);
  ASSERT_EQ(r.slices.size(), 2u);
  EXPECT_EQ(r.slices[0].conditions.size(), 1u);
  EXPECT_EQ(r.slices[0].conditions[0].first, 0u);  // Sensitive column.
  EXPECT_LT(r.slices[0].metric_value, r.slices[1].metric_value);
  EXPECT_LT(r.slices[0].gap_to_overall, 0.0);
  // The slice's selection rate must match a direct count.
  const auto& worst = r.slices[0];
  EXPECT_EQ(worst.metric_value, static_cast<double>(worst.hits) /
                                    static_cast<double>(worst.relevant));
}

TEST(WorstSlice, IntersectionalSearchFindsSlicesBelowOverall) {
  auto f = BiasedCredit::Make(1.0, 86, 600);
  SliceSearchOptions opts;  // All columns, depth 3, selection rate.
  const WorstSliceReport r = WorstSliceSearch(f.model, f.data, opts);
  ASSERT_FALSE(r.slices.empty());
  EXPECT_GT(r.slices_examined, r.slices.size());
  EXPECT_GT(r.lattice_candidates, 0u);
  const size_t min_count = static_cast<size_t>(0.02 * 600);
  double prev = -1.0;
  for (const auto& s : r.slices) {
    EXPECT_LE(s.conditions.size(), opts.max_conditions);
    EXPECT_GE(s.support, min_count);
    EXPECT_LE(s.hits, s.relevant);
    EXPECT_LE(s.relevant, s.support);
    EXPECT_FALSE(s.description.empty());
    EXPECT_GE(s.metric_value, prev);  // Worst (lowest rate) first.
    prev = s.metric_value;
  }
  EXPECT_LT(r.slices[0].metric_value, r.overall_metric);
}

TEST(WorstSlice, EngineMatchesLoopedOracleExactly) {
  auto f = BiasedCredit::Make(1.0, 87, 500);
  for (const auto metric :
       {SliceMetricKind::kSelectionRate, SliceMetricKind::kAccuracy,
        SliceMetricKind::kTruePositiveRate,
        SliceMetricKind::kFalsePositiveRate}) {
    SliceSearchOptions engine_opts;
    engine_opts.metric = metric;
    engine_opts.top_k = 8;
    SliceSearchOptions oracle_opts = engine_opts;
    oracle_opts.use_bitset_engine = false;
    const WorstSliceReport fast = WorstSliceSearch(f.model, f.data,
                                                   engine_opts);
    const WorstSliceReport slow = WorstSliceSearch(f.model, f.data,
                                                   oracle_opts);
    EXPECT_EQ(fast.overall_metric, slow.overall_metric);
    EXPECT_EQ(fast.slices_examined, slow.slices_examined);
    ASSERT_EQ(fast.slices.size(), slow.slices.size());
    for (size_t i = 0; i < fast.slices.size(); ++i) {
      EXPECT_EQ(fast.slices[i].description, slow.slices[i].description);
      EXPECT_EQ(fast.slices[i].support, slow.slices[i].support);
      EXPECT_EQ(fast.slices[i].hits, slow.slices[i].hits);
      EXPECT_EQ(fast.slices[i].relevant, slow.slices[i].relevant);
      EXPECT_EQ(fast.slices[i].metric_value, slow.slices[i].metric_value);
      EXPECT_EQ(fast.slices[i].gap_to_overall, slow.slices[i].gap_to_overall);
    }
  }
}

TEST(WorstSlice, FalsePositiveRateRanksHighestFirst) {
  auto f = BiasedCredit::Make(1.0, 88, 500);
  SliceSearchOptions opts;
  opts.metric = SliceMetricKind::kFalsePositiveRate;
  const WorstSliceReport r = WorstSliceSearch(f.model, f.data, opts);
  double prev = 2.0;
  for (const auto& s : r.slices) {
    EXPECT_LE(s.metric_value, prev);  // Higher FPR = worse = first.
    prev = s.metric_value;
  }
}

// Zero-support singles (discretizer bins that never occur in the indexed
// data) are pruned before any extension, and the walk reports them.
TEST(WorstSlice, LatticeWalkPrunesZeroSupportSingles) {
  auto f = BiasedCredit::Make(1.0, 89, 400);
  // Discretize on the full data, but index only the rows the model
  // rejects — bins populated solely by accepted rows go extent-empty.
  Discretizer disc(f.data, /*bins=*/6);
  std::vector<size_t> low;
  for (size_t i = 0; i < f.data.size(); ++i) {
    if (i % 3 == 0) low.push_back(i);
  }
  const Dataset subset = f.data.Subset(low);
  // Squash a column so several of its full-data bins are empty in the
  // index: every subset row takes the column's minimum value.
  Matrix x = subset.x();
  double squash = x.At(0, 2);
  for (size_t i = 0; i < x.rows(); ++i) squash = std::min(squash, x.At(i, 2));
  for (size_t i = 0; i < x.rows(); ++i) x.At(i, 2) = squash;
  const Dataset squashed(subset.schema(), std::move(x), subset.labels(),
                         subset.groups());
  const SliceExtentIndex index(disc, squashed);
  size_t seen = 0;
  const auto stats = LatticeWalk(
      index, /*min_count=*/1, /*max_depth=*/2,
      [](size_t) {}, [](size_t, const LatticeNode&) {},
      [&](size_t, const LatticeNode& node) {
        // Dead singles never materialize (intersections can still be
        // empty at depth 2 — only the singles level is pre-pruned).
        if (node.depth == 1) EXPECT_GT(node.support, 0u);
        ++seen;
        return true;
      });
  EXPECT_GT(stats.singles_zero_support, 0u);
  EXPECT_EQ(stats.candidates, seen);
  // Every single the walk dropped or kept is accounted for.
  size_t frequent = 0;
  for (size_t sid = 0; sid < index.num_singles(); ++sid) {
    if (index.support(sid) >= 1) ++frequent;
  }
  EXPECT_EQ(frequent + stats.singles_zero_support + stats.singles_infrequent,
            index.num_singles());
}

// --- probabilistic contrastive counterfactuals ---

TEST(Contrastive, InterventionQueryMovesFavorableRate) {
  CausalWorld world = MakeCreditWorld(1.0);
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.6, 0.4, -0.5, 0.0}, -3.5);
  auto income = world.scm.dag().IndexOf("income");
  ASSERT_TRUE(income.ok());
  auto low = EstimateInterventionQuery(lr, world.scm, world.sensitive, 1,
                                       {{*income, 2.0}}, 3000, 17);
  auto high = EstimateInterventionQuery(lr, world.scm, world.sensitive, 1,
                                        {{*income, 8.0}}, 3000, 17);
  EXPECT_GT(high.favorable_rate, low.favorable_rate + 0.2);
}

TEST(Contrastive, SufficiencyGapRevealsGroupDifference) {
  CausalWorld world = MakeCreditWorld(1.5);
  // Model dominated by the *proxy* (zip_risk), so fixing income alone
  // rescues the non-protected group far more often: the protected group
  // stays trapped by its proxy value.
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.3, 0.2, -0.2, -1.0}, 0.5);
  auto income = world.scm.dag().IndexOf("income");
  ASSERT_TRUE(income.ok());
  auto report = ContrastInterventions(lr, world.scm, world.sensitive,
                                      {{*income, 6.5}}, {{*income, 2.0}},
                                      1500, 18);
  EXPECT_GE(report.sufficiency_protected, 0.0);
  EXPECT_LE(report.sufficiency_protected, 1.0);
  EXPECT_GT(report.sufficiency_gap, 0.0);
  EXPECT_GT(report.necessity_non_protected, 0.0);
}

// --- causal recourse ---

TEST(Recourse, CausalRecourseExploitsDownstreamEffects) {
  CausalWorld world = MakeCreditWorld(1.0);
  // Model heavily weights savings; savings is caused by income. An
  // intervention on income should be usable for recourse.
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.2, 0.9, -0.2, 0.0}, -5.0);
  Rng rng(19);
  auto income = world.scm.dag().IndexOf("income");
  ASSERT_TRUE(income.ok());
  // Find a denied individual.
  Vector x;
  for (int tries = 0; tries < 200; ++tries) {
    Vector cand = world.scm.SampleDo({{world.sensitive, 1.0}}, &rng);
    if (lr.Predict(cand) == 0) {
      x = cand;
      break;
    }
  }
  ASSERT_FALSE(x.empty());
  auto action = FindCausalRecourse(lr, world.scm, x, {*income}, {});
  ASSERT_TRUE(action.found);
  EXPECT_EQ(lr.Predict(action.resulting_state), 1);
  // Savings must have moved even though only income was intervened on.
  auto savings = world.scm.dag().IndexOf("savings");
  ASSERT_TRUE(savings.ok());
  EXPECT_GT(action.resulting_state[*savings], x[*savings]);
}

TEST(Recourse, AlreadyFavorableNeedsNoAction) {
  CausalWorld world = MakeCreditWorld(1.0);
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.0, 0.0, 0.0, 0.0}, 5.0);  // Always favorable.
  Rng rng(20);
  const Vector x = world.scm.Sample(&rng);
  auto action = FindCausalRecourse(lr, world.scm, x, {1, 2}, {});
  EXPECT_TRUE(action.found);
  EXPECT_TRUE(action.interventions.empty());
  EXPECT_DOUBLE_EQ(action.cost, 0.0);
}

TEST(Recourse, GroupRecourseGapPositiveUnderBias) {
  auto f = BiasedCredit::Make(1.2);
  auto report = EvaluateGroupRecourse(f.model, f.data);
  EXPECT_GT(report.negatives_protected, 0u);
  EXPECT_GT(report.negatives_non_protected, 0u);
  EXPECT_GT(report.recourse_gap, 0.0)
      << "denied protected individuals sit farther from the boundary";
}

TEST(Recourse, CausalRecourseFairnessDetectsDisparity) {
  CausalWorld world = MakeCreditWorld(1.5);
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.6, 0.4, -0.5, 0.0}, -3.5);
  auto income = world.scm.dag().IndexOf("income");
  ASSERT_TRUE(income.ok());
  auto report = EvaluateCausalRecourseFairness(lr, world, {*income}, 400,
                                               21);
  EXPECT_GT(report.evaluated, 20u);
  EXPECT_GT(report.group_gap, 0.0)
      << "protected individuals should pay more for recourse";
  EXPECT_GT(report.individual_unfairness, 0.0);
}

TEST(Recourse, FairWorldHasNearZeroIndividualUnfairness) {
  CausalWorld world = MakeCreditWorld(0.0);  // S affects nothing relevant.
  LogisticRegression lr;
  lr.SetParameters({0.0, 0.6, 0.4, -0.5, 0.0}, -3.5);
  auto income = world.scm.dag().IndexOf("income");
  ASSERT_TRUE(income.ok());
  auto report =
      EvaluateCausalRecourseFairness(lr, world, {*income}, 300, 22);
  EXPECT_NEAR(report.individual_unfairness, 0.0, 0.05);
  EXPECT_NEAR(report.group_gap, 0.0, 0.3);
}

}  // namespace
}  // namespace xfair
