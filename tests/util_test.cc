// Tests for src/util: Status/Result, Rng, Matrix, stats, table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/matrix.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/table.h"

namespace xfair {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, OkStatusIsNormalizedToInternal) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.Add(rng.Normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  auto s = rng.SampleWithoutReplacement(50, 20);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Matrix, IdentityMatVec) {
  Matrix id = Matrix::Identity(3);
  Vector v = {1.0, 2.0, 3.0};
  EXPECT_EQ(id.MatVec(v), v);
}

TEST(Matrix, FromRowsAndAccess) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
  EXPECT_EQ(m.Row(0), Vector({1, 2, 3}));
  EXPECT_EQ(m.Col(1), Vector({2, 5}));
}

TEST(Matrix, TransposeMatVecMatchesTransposedCopy) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Vector v = {1.0, -1.0, 2.0};
  EXPECT_EQ(m.TransposeMatVec(v), m.Transposed().MatVec(v));
}

TEST(Matrix, MatMul) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(Matrix, SolveLinearSystem) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  auto x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(Matrix, SolveSingularFails) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  auto x = SolveLinearSystem(a, {1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Matrix, InvertRoundTrip) {
  Matrix a = Matrix::FromRows({{4, 7}, {2, 6}});
  auto inv = Invert(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a.MatMul(*inv);
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(prod.At(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(VectorOps, NormsAndArithmetic) {
  Vector a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(Norm1(a), 7.0);
  EXPECT_EQ(NonZeroCount({0.0, 1e-15, 2.0}), 1u);
  EXPECT_EQ(Sub({5, 5}, {2, 3}), Vector({3, 2}));
  EXPECT_EQ(Add({1, 2}, {3, 4}), Vector({4, 6}));
  EXPECT_EQ(Scale(2.0, {1, -2}), Vector({2, -4}));
  Vector y = {1.0, 1.0};
  Axpy(2.0, {1.0, 2.0}, &y);
  EXPECT_EQ(y, Vector({3.0, 5.0}));
}

TEST(Stats, MeanVarianceQuantile) {
  Vector v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 2.5);
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(Stats, QuantileEmptyIsNaNSentinel) {
  // Empty slices happen whenever a caller conditions on a group that is
  // absent; the documented sentinel is quiet NaN, not an abort.
  EXPECT_TRUE(std::isnan(Quantile({}, 0.0)));
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
  EXPECT_TRUE(std::isnan(Quantile({}, 1.0)));
  EXPECT_TRUE(std::isnan(Median({})));
}

TEST(Stats, QuantileSingleElementIsThatElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(Quantile({7.5}, 0.25), 7.5);
  EXPECT_DOUBLE_EQ(Quantile({7.5}, 1.0), 7.5);
  EXPECT_DOUBLE_EQ(Median({7.5}), 7.5);
}

TEST(Stats, PearsonPerfectAndNone) {
  Vector a = {1, 2, 3, 4};
  EXPECT_NEAR(PearsonCorrelation(a, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, {8, 6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, {5, 5, 5, 5}), 0.0);
}

TEST(Stats, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(Stats, LogGammaMatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-9);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-9);
}

TEST(Stats, LogChoose) {
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogChoose(10, 0), 0.0, 1e-9);
}

TEST(Stats, BinomialTail) {
  // P(X >= 1), X ~ Bin(2, 0.5) = 3/4.
  EXPECT_NEAR(BinomialTailProb(2, 1, 0.5), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(BinomialTailProb(10, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailProb(10, 11, 0.3), 0.0);
  EXPECT_NEAR(BinomialTailProb(5, 5, 0.5), 1.0 / 32.0, 1e-12);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Vector v = {1.5, 2.5, 0.5, 4.0, -1.0};
  RunningStats rs;
  for (double x : v) rs.Add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(v), 1e-12);
}

TEST(Table, RendersAligned) {
  AsciiTable t({"name", "v"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | v  |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1  |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace xfair
